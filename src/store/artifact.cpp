#include "store/artifact.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "graph/fnnt.hpp"
#include "radixnet/builder.hpp"
#include "radixnet/serialize.hpp"
#include "store/checksum.hpp"

namespace radix::store {

namespace {

std::uint64_t align_up(std::uint64_t v) {
  return (v + kSectionAlign - 1) & ~(kSectionAlign - 1);
}

// One payload queued for writing: the writer borrows the source bytes
// (layer arrays are not copied on save either -- they stream from the
// engine's views straight into the file buffer).
struct Payload {
  SectionKind kind;
  std::uint32_t layer;
  const void* data;
  std::uint64_t size;
  std::uint64_t count;
  std::uint32_t elem_size;
};

void append_bytes(std::vector<std::uint8_t>& out, const void* p,
                  std::size_t n) {
  const std::size_t at = out.size();
  out.resize(at + n);
  std::memcpy(out.data() + at, p, n);
}

template <typename T>
void append_pod(std::vector<std::uint8_t>& out, T v) {
  append_bytes(out, &v, sizeof(v));
}

std::vector<std::uint8_t> encode_meta(const std::string& name, float clamp,
                                      std::uint32_t layer_count) {
  std::vector<std::uint8_t> meta;
  append_pod(meta, static_cast<std::uint32_t>(name.size()));
  append_bytes(meta, name.data(), name.size());
  append_pod(meta, clamp);
  append_pod(meta, layer_count);
  return meta;
}

[[noreturn]] void throw_errno(const std::string& what,
                              const std::string& path) {
  throw IoError(what + " " + path + ": " + std::strerror(errno));
}

void fsync_parent_dir(const std::string& path) {
  const auto slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash + 1);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return;  // best effort; the rename itself already landed
  (void)::fsync(fd);
  (void)::close(fd);
}

// Assemble the whole artifact in memory, then commit it with
// write-to-temp + fsync + atomic rename so a crash mid-save never
// leaves a torn file under the final name.
void commit_artifact(const std::string& path, std::uint32_t flags,
                     const std::vector<Payload>& payloads) {
  const std::uint32_t nsec = static_cast<std::uint32_t>(payloads.size());
  std::uint64_t off = align_up(sizeof(FileHeader) +
                               sizeof(SectionEntry) * nsec);

  std::vector<SectionEntry> table(nsec);
  for (std::uint32_t i = 0; i < nsec; ++i) {
    const Payload& p = payloads[i];
    SectionEntry& e = table[i];
    std::memset(&e, 0, sizeof(e));
    e.kind = static_cast<std::uint32_t>(p.kind);
    e.layer = p.layer;
    e.offset = off;
    e.size = p.size;
    e.hash = xxh64(p.data, p.size);
    e.count = p.count;
    e.elem_size = p.elem_size;
    off = align_up(off + p.size);
  }
  const std::uint64_t file_size =
      nsec == 0 ? align_up(sizeof(FileHeader))
                : table.back().offset + table.back().size;

  FileHeader header{};
  std::memcpy(header.magic, kMagic, sizeof(kMagic));
  header.version = kFormatVersion;
  header.flags = flags;
  header.section_count = nsec;
  header.file_size = file_size;
  header.header_hash = 0;

  std::vector<std::uint8_t> file;
  file.reserve(file_size);
  append_bytes(file, &header, sizeof(header));
  for (const SectionEntry& e : table) append_bytes(file, &e, sizeof(e));
  // Hash the metadata prefix with the hash field still zero, then patch
  // it in place.
  const std::uint64_t header_hash = xxh64(file.data(), file.size());
  std::memcpy(file.data() + offsetof(FileHeader, header_hash), &header_hash,
              sizeof(header_hash));
  for (std::uint32_t i = 0; i < nsec; ++i) {
    file.resize(table[i].offset, 0);  // alignment padding
    append_bytes(file, payloads[i].data, payloads[i].size);
  }

  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                        0644);
  if (fd < 0) throw_errno("artifact: cannot create", tmp);
  std::size_t written = 0;
  while (written < file.size()) {
    const ssize_t n = ::write(fd, file.data() + written,
                              file.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      (void)::close(fd);
      (void)::unlink(tmp.c_str());
      throw_errno("artifact: write failed", tmp);
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    (void)::close(fd);
    (void)::unlink(tmp.c_str());
    throw_errno("artifact: fsync failed", tmp);
  }
  (void)::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    (void)::unlink(tmp.c_str());
    throw_errno("artifact: rename failed", path);
  }
  fsync_parent_dir(path);
}

}  // namespace

void save_artifact(const std::string& path, const infer::SparseDnn& dnn,
                   const std::string& name) {
  const auto layer_count = static_cast<std::uint32_t>(dnn.depth());
  const std::vector<std::uint8_t> meta =
      encode_meta(name, dnn.clamp(), layer_count);

  std::vector<std::uint32_t> dims;
  dims.reserve(2 * layer_count);
  for (std::uint32_t k = 0; k < layer_count; ++k) {
    dims.push_back(dnn.layer_view(k).rows());
    dims.push_back(dnn.layer_view(k).cols());
  }

  std::vector<Payload> payloads;
  payloads.push_back({SectionKind::kMeta, kNoLayer, meta.data(), meta.size(),
                      1, static_cast<std::uint32_t>(meta.size())});
  payloads.push_back({SectionKind::kLayerDims, kNoLayer, dims.data(),
                      dims.size() * sizeof(std::uint32_t), dims.size(),
                      sizeof(std::uint32_t)});
  payloads.push_back({SectionKind::kBiases, kNoLayer, dnn.biases().data(),
                      dnn.biases().size() * sizeof(float),
                      dnn.biases().size(), sizeof(float)});
  for (std::uint32_t k = 0; k < layer_count; ++k) {
    const CsrFloatView v = dnn.layer_view(k);
    payloads.push_back({SectionKind::kRowPtr, k, v.rowptr().data(),
                        v.rowptr().size() * sizeof(offset_t),
                        v.rowptr().size(), sizeof(offset_t)});
    payloads.push_back({SectionKind::kColIdx, k, v.colind().data(),
                        v.colind().size() * sizeof(index_t),
                        v.colind().size(), sizeof(index_t)});
    payloads.push_back({SectionKind::kValues, k, v.values().data(),
                        v.values().size() * sizeof(float),
                        v.values().size(), sizeof(float)});
  }
  commit_artifact(path, 0, payloads);
}

void save_spec_artifact(const std::string& path, const RadixNetSpec& spec,
                        std::span<const float> layer_weights,
                        std::span<const float> biases, float clamp,
                        const std::string& name) {
  RADIX_REQUIRE(layer_weights.size() == biases.size(),
                "save_spec_artifact: one weight and one bias per layer");
  const auto layer_count = static_cast<std::uint32_t>(layer_weights.size());
  const std::vector<std::uint8_t> meta = encode_meta(name, clamp,
                                                     layer_count);
  const std::string text = spec_to_text(spec);

  std::vector<Payload> payloads;
  payloads.push_back({SectionKind::kMeta, kNoLayer, meta.data(), meta.size(),
                      1, static_cast<std::uint32_t>(meta.size())});
  payloads.push_back({SectionKind::kSpec, kNoLayer, text.data(), text.size(),
                      text.size(), 1});
  payloads.push_back({SectionKind::kLayerWeights, kNoLayer,
                      layer_weights.data(),
                      layer_weights.size() * sizeof(float),
                      layer_weights.size(), sizeof(float)});
  payloads.push_back({SectionKind::kBiases, kNoLayer, biases.data(),
                      biases.size() * sizeof(float), biases.size(),
                      sizeof(float)});
  commit_artifact(path, kFlagSpecOnly, payloads);
}

// --- Reader ----------------------------------------------------------------

class ArtifactReader::Mapping {
 public:
  Mapping(const std::string& path) {
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) throw_errno("artifact: cannot open", path);
    struct stat st{};
    if (::fstat(fd, &st) != 0) {
      (void)::close(fd);
      throw_errno("artifact: stat failed", path);
    }
    size_ = static_cast<std::size_t>(st.st_size);
    if (size_ == 0) {
      (void)::close(fd);
      throw TruncatedError(path + ": empty file");
    }
    void* p = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
    (void)::close(fd);
    if (p == MAP_FAILED) throw_errno("artifact: mmap failed", path);
    base_ = static_cast<const std::uint8_t*>(p);
  }
  ~Mapping() {
    if (base_ != nullptr) {
      (void)::munmap(const_cast<std::uint8_t*>(base_), size_);
    }
  }
  Mapping(const Mapping&) = delete;
  Mapping& operator=(const Mapping&) = delete;

  const std::uint8_t* base() const noexcept { return base_; }
  std::size_t size() const noexcept { return size_; }

 private:
  const std::uint8_t* base_ = nullptr;
  std::size_t size_ = 0;
};

ArtifactReader::ArtifactReader(const std::string& path)
    : path_(path), map_(std::make_shared<const Mapping>(path)) {
  const std::uint8_t* base = map_->base();
  const std::size_t size = map_->size();
  if (size < sizeof(FileHeader)) {
    throw TruncatedError(path + ": shorter than the file header");
  }
  std::memcpy(&header_, base, sizeof(header_));
  if (std::memcmp(header_.magic, kMagic, sizeof(kMagic)) != 0) {
    throw FormatError(path + ": bad magic (not a RADIXART artifact)");
  }
  if (header_.version != kFormatVersion) {
    throw FormatError(path + ": unsupported format version " +
                      std::to_string(header_.version));
  }
  const std::uint64_t table_end =
      sizeof(FileHeader) +
      static_cast<std::uint64_t>(header_.section_count) *
          sizeof(SectionEntry);
  if (table_end > size) {
    throw TruncatedError(path + ": section table past end of file");
  }
  // Header hash covers header + table with the hash field zeroed.
  {
    std::vector<std::uint8_t> prefix(base, base + table_end);
    std::memset(prefix.data() + offsetof(FileHeader, header_hash), 0,
                sizeof(std::uint64_t));
    if (xxh64(prefix.data(), prefix.size()) != header_.header_hash) {
      throw ChecksumError(path + ": header/section-table hash mismatch");
    }
  }
  if (header_.file_size != size) {
    throw TruncatedError(path + ": header claims " +
                         std::to_string(header_.file_size) + " bytes, file has " +
                         std::to_string(size));
  }

  sections_.resize(header_.section_count);
  std::memcpy(sections_.data(), base + sizeof(FileHeader),
              sections_.size() * sizeof(SectionEntry));
  for (const SectionEntry& s : sections_) {
    if (s.offset % kSectionAlign != 0) {
      throw FormatError(path + ": section payload not 64-byte aligned");
    }
    if (s.offset > size || s.size > size - s.offset) {
      throw TruncatedError(path + ": section payload past end of file");
    }
    // Divide instead of multiplying so a hostile count cannot wrap.
    if (s.elem_size == 0 || s.size % s.elem_size != 0 ||
        s.count != s.size / s.elem_size) {
      throw FormatError(path + ": section size / element count mismatch");
    }
    if (xxh64(base + s.offset, s.size) != s.hash) {
      throw ChecksumError(path + ": section " + std::to_string(s.kind) +
                          " payload hash mismatch");
    }
  }

  // Decode kMeta: name, clamp, layer count.
  const SectionEntry& meta = require(SectionKind::kMeta);
  const std::uint8_t* m = payload(meta);
  if (meta.size < sizeof(std::uint32_t)) {
    throw FormatError(path + ": meta section too small");
  }
  std::uint32_t name_len;
  std::memcpy(&name_len, m, sizeof(name_len));
  if (meta.size < sizeof(std::uint32_t) + name_len + sizeof(float) +
                      sizeof(std::uint32_t)) {
    throw FormatError(path + ": meta section too small for its name");
  }
  name_.assign(reinterpret_cast<const char*>(m + sizeof(std::uint32_t)),
               name_len);
  std::memcpy(&clamp_, m + sizeof(std::uint32_t) + name_len, sizeof(clamp_));
  std::memcpy(&layer_count_,
              m + sizeof(std::uint32_t) + name_len + sizeof(float),
              sizeof(layer_count_));
  if (layer_count_ == 0) {
    throw FormatError(path + ": artifact declares zero layers");
  }
}

bool ArtifactReader::spec_only() const noexcept {
  return (header_.flags & kFlagSpecOnly) != 0;
}

std::uint64_t ArtifactReader::file_size() const noexcept {
  return header_.file_size;
}

const std::uint8_t* ArtifactReader::mapped_base() const noexcept {
  return map_->base();
}

std::size_t ArtifactReader::mapped_size() const noexcept {
  return map_->size();
}

const SectionEntry* ArtifactReader::find(SectionKind kind,
                                         std::uint32_t layer) const {
  for (const SectionEntry& s : sections_) {
    if (s.kind == static_cast<std::uint32_t>(kind) && s.layer == layer) {
      return &s;
    }
  }
  return nullptr;
}

const SectionEntry& ArtifactReader::require(SectionKind kind,
                                            std::uint32_t layer) const {
  const SectionEntry* s = find(kind, layer);
  if (s == nullptr) {
    throw FormatError(path_ + ": missing section kind " +
                      std::to_string(static_cast<std::uint32_t>(kind)) +
                      (layer == kNoLayer
                           ? std::string()
                           : " for layer " + std::to_string(layer)));
  }
  return *s;
}

const std::uint8_t* ArtifactReader::payload(const SectionEntry& s) const {
  return map_->base() + s.offset;
}

infer::SparseDnn ArtifactReader::instantiate() const {
  const SectionEntry& biases_sec = require(SectionKind::kBiases);
  if (biases_sec.elem_size != sizeof(float) ||
      biases_sec.count != layer_count_) {
    throw FormatError(path_ + ": biases section does not match layer count");
  }
  const auto* bias_data = reinterpret_cast<const float*>(payload(biases_sec));
  std::vector<float> biases(bias_data, bias_data + layer_count_);

  if (spec_only()) {
    const SectionEntry& spec_sec = require(SectionKind::kSpec);
    const SectionEntry& w_sec = require(SectionKind::kLayerWeights);
    if (w_sec.elem_size != sizeof(float) || w_sec.count != layer_count_) {
      throw FormatError(path_ +
                        ": layer-weights section does not match layer count");
    }
    const std::string text(reinterpret_cast<const char*>(payload(spec_sec)),
                           spec_sec.size);
    const RadixNetSpec spec = spec_from_text(text);
    const Fnnt topo = build_radix_net(spec);
    if (topo.depth() != layer_count_) {
      throw FormatError(path_ + ": spec builds " +
                        std::to_string(topo.depth()) +
                        " layers, meta declares " +
                        std::to_string(layer_count_));
    }
    const auto* weights = reinterpret_cast<const float*>(payload(w_sec));
    std::vector<Csr<float>> layers;
    layers.reserve(layer_count_);
    for (std::uint32_t k = 0; k < layer_count_; ++k) {
      const float w = weights[k];
      layers.push_back(
          topo.layer(k).map<float>([w](pattern_t) { return w; }));
    }
    return infer::SparseDnn(std::move(layers), std::move(biases), clamp_);
  }

  const SectionEntry& dims_sec = require(SectionKind::kLayerDims);
  if (dims_sec.elem_size != sizeof(std::uint32_t) ||
      dims_sec.count != 2ull * layer_count_) {
    throw FormatError(path_ + ": layer-dims section does not match layer "
                              "count");
  }
  const auto* dims =
      reinterpret_cast<const std::uint32_t*>(payload(dims_sec));
  std::vector<CsrFloatView> views;
  views.reserve(layer_count_);
  for (std::uint32_t k = 0; k < layer_count_; ++k) {
    const index_t rows = dims[2 * k];
    const index_t cols = dims[2 * k + 1];
    const SectionEntry& rp = require(SectionKind::kRowPtr, k);
    const SectionEntry& ci = require(SectionKind::kColIdx, k);
    const SectionEntry& va = require(SectionKind::kValues, k);
    if (rp.elem_size != sizeof(offset_t) ||
        rp.count != static_cast<std::uint64_t>(rows) + 1) {
      throw FormatError(path_ + ": layer " + std::to_string(k) +
                        " rowptr section does not match its dims");
    }
    if (ci.elem_size != sizeof(index_t) || va.elem_size != sizeof(float) ||
        ci.count != va.count) {
      throw FormatError(path_ + ": layer " + std::to_string(k) +
                        " colidx/values sections disagree");
    }
    // Zero-copy: spans directly over the 64-byte-aligned mapped payloads.
    const CsrFloatView v(
        rows, cols,
        {reinterpret_cast<const offset_t*>(payload(rp)), rp.count},
        {reinterpret_cast<const index_t*>(payload(ci)), ci.count},
        {reinterpret_cast<const float*>(payload(va)), va.count});
    check_view_invariants(v, [&](const char* msg) {
      throw FormatError(path_ + ": layer " + std::to_string(k) + ": " + msg);
    });
    views.push_back(v);
  }
  return infer::SparseDnn(std::move(views), std::move(biases), clamp_,
                          map_);
}

}  // namespace radix::store

// Tests for the deterministic PRNG.
#include "support/random.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace radix {
namespace {

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformRespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.uniform(bound), bound);
    }
  }
}

TEST(Rng, UniformBound1AlwaysZero) {
  Rng rng(7);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.uniform(1), 0u);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(3);
  double mn = 1.0, mx = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    mn = std::min(mn, v);
    mx = std::max(mx, v);
  }
  EXPECT_LT(mn, 0.01);  // saturates the range
  EXPECT_GT(mx, 0.99);
}

TEST(Rng, UniformCoversSmallRangeUniformly) {
  Rng rng(11);
  std::vector<int> counts(6, 0);
  const int n = 60000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform(6)];
  for (int c : counts) {
    EXPECT_NEAR(c, n / 6, n / 60);  // within 10% of expectation
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(5);
  const int n = 50000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, NormalShiftScale) {
  Rng rng(5);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 0.5);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(9);
  int hits = 0;
  const int n = 40000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.25) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

TEST(Rng, PermutationIsValid) {
  Rng rng(13);
  for (std::uint32_t n : {1u, 2u, 10u, 1000u}) {
    const auto p = rng.permutation(n);
    ASSERT_EQ(p.size(), n);
    std::set<std::uint32_t> seen(p.begin(), p.end());
    EXPECT_EQ(seen.size(), n);
    EXPECT_EQ(*seen.begin(), 0u);
    EXPECT_EQ(*seen.rbegin(), n - 1);
  }
}

TEST(Rng, PermutationIsShuffled) {
  Rng rng(13);
  const auto p = rng.permutation(1000);
  std::size_t fixed = 0;
  for (std::uint32_t i = 0; i < 1000; ++i) {
    if (p[i] == i) ++fixed;
  }
  EXPECT_LT(fixed, 20u);  // expected ~1 fixed point
}

TEST(Rng, ShuffleKeepsMultiset) {
  Rng rng(17);
  std::vector<int> v = {1, 1, 2, 3, 5, 8, 13};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, SplitStreamsAreIndependentAndDeterministic) {
  Rng a(99);
  Rng b(99);
  Rng a1 = a.split();
  Rng b1 = b.split();
  // Same parent state -> same child stream.
  for (int i = 0; i < 20; ++i) EXPECT_EQ(a1.next_u64(), b1.next_u64());
  // Child differs from the parent's continued stream.
  Rng c(99);
  Rng c1 = c.split();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (c.next_u64() == c1.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

}  // namespace
}  // namespace radix

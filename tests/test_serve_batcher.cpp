// Deterministic tests of the micro-batcher's scheduling policy on the
// injectable clock (support/thread.hpp).
//
// Everything time-dependent here runs on a FakeClock: the coalescing
// deadline, bounded-wait admission and the QoS claim policy (strict
// priority between classes, weighted-deficit round-robin within a
// class, starvation bound) are asserted exactly, with no sleeps and no
// tolerance bands.  A few cross-thread handoff tests (backpressure,
// close) keep the real steady clock -- they assert ordering, not time.
#include "serve/batcher.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <deque>
#include <thread>
#include <vector>

#include "support/error.hpp"
#include "support/random.hpp"
#include "support/thread.hpp"

namespace radix::serve {
namespace {

using namespace std::chrono_literals;

// Requests are tagged through their (never dereferenced) input pointer
// so claim order can be matched against submit order.
const float* tag(std::uint64_t seq) {
  return reinterpret_cast<const float*>(static_cast<std::uintptr_t>(seq));
}

Request make_request(index_t rows, std::uint64_t seq = 0) {
  Request r;
  r.rows = rows;
  r.input = tag(seq);
  return r;
}

// ---------------------------------------------------------------------------
// FakeClock semantics.

TEST(FakeClock, AdvancesOnlyManually) {
  FakeClock clock;
  const auto t0 = clock.now();
  EXPECT_EQ(clock.now(), t0);
  clock.advance(250us);
  EXPECT_EQ(clock.now(), t0 + 250us);
}

TEST(FakeClock, WaitUntilPastDeadlineTimesOutWithoutBlocking) {
  FakeClock clock;
  Monitor m;
  std::unique_lock lock(m.mutex);
  EXPECT_EQ(clock.wait_until(m, lock, clock.now()), std::cv_status::timeout);
  EXPECT_EQ(clock.wait_until(m, lock, clock.now() - 1us),
            std::cv_status::timeout);
  clock.forget(m);
}

TEST(FakeClock, AdvanceWakesParkedWaiter) {
  FakeClock clock;
  Monitor m;
  const auto deadline = clock.now() + 1ms;
  std::atomic<bool> timed_out{false};
  std::thread waiter([&] {
    std::unique_lock lock(m.mutex);
    while (clock.wait_until(m, lock, deadline) != std::cv_status::timeout) {
    }
    timed_out.store(true);
  });
  clock.advance(500us);  // not enough: waiter must stay parked
  std::this_thread::sleep_for(10ms);
  EXPECT_FALSE(timed_out.load());
  clock.advance(600us);  // past the deadline
  waiter.join();
  EXPECT_TRUE(timed_out.load());
  clock.forget(m);
}

// ---------------------------------------------------------------------------
// Coalescing policy (ported to the FakeClock where time matters).

TEST(MicroBatcher, CoalescesUpToRowBudget) {
  MicroBatcher b({.queue_capacity = 64, .max_batch_rows = 8,
                  .max_delay = 0us});
  const std::size_t m = b.add_model();
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(b.try_submit(m, make_request(2)));

  MicroBatcher::Batch batch;
  // 5 x 2 rows against a budget of 8: first claim takes 4 requests.
  ASSERT_TRUE(b.next(batch));
  EXPECT_EQ(batch.model, m);
  EXPECT_EQ(batch.priority, Priority::kBatch);
  EXPECT_EQ(batch.rows, 8u);
  EXPECT_EQ(batch.requests.size(), 4u);
  // The leftover request ships in the second claim.
  ASSERT_TRUE(b.next(batch));
  EXPECT_EQ(batch.rows, 2u);
  EXPECT_EQ(batch.requests.size(), 1u);
}

TEST(MicroBatcher, FifoNeverReordersPastANonFittingRequest) {
  MicroBatcher b({.queue_capacity = 64, .max_batch_rows = 8,
                  .max_delay = 0us});
  const std::size_t m = b.add_model();
  ASSERT_TRUE(b.try_submit(m, make_request(3)));
  ASSERT_TRUE(b.try_submit(m, make_request(6)));  // does not fit after 3
  ASSERT_TRUE(b.try_submit(m, make_request(1)));  // would fit, must NOT jump

  MicroBatcher::Batch batch;
  ASSERT_TRUE(b.next(batch));
  EXPECT_EQ(batch.rows, 3u) << "stop at first non-fitting request";
  ASSERT_TRUE(b.next(batch));
  EXPECT_EQ(batch.rows, 7u) << "6-row then 1-row request coalesce next";
  EXPECT_EQ(batch.requests.size(), 2u);
}

TEST(MicroBatcher, OversizeRequestShipsAlone) {
  MicroBatcher b({.queue_capacity = 64, .max_batch_rows = 8,
                  .max_delay = 0us});
  const std::size_t m = b.add_model();
  ASSERT_TRUE(b.try_submit(m, make_request(100)));
  ASSERT_TRUE(b.try_submit(m, make_request(1)));

  MicroBatcher::Batch batch;
  ASSERT_TRUE(b.next(batch));
  EXPECT_EQ(batch.rows, 100u);
  EXPECT_EQ(batch.requests.size(), 1u);
}

TEST(MicroBatcher, EnqueueTimeIsStampedByTheInjectedClock) {
  FakeClock clock;
  MicroBatcher b({.queue_capacity = 8, .max_batch_rows = 4,
                  .max_delay = 0us, .clock = &clock});
  const std::size_t m = b.add_model();
  const auto t0 = clock.now();
  ASSERT_TRUE(b.try_submit(m, make_request(1)));
  clock.advance(5ms);
  ASSERT_TRUE(b.try_submit(m, make_request(1)));

  MicroBatcher::Batch batch;
  ASSERT_TRUE(b.next(batch));
  ASSERT_EQ(batch.requests.size(), 2u);
  EXPECT_EQ(batch.requests[0].enqueued, t0);
  EXPECT_EQ(batch.requests[1].enqueued, t0 + 5ms);
}

TEST(MicroBatcher, CoalescingWindowHonorsMaxDelayExactly) {
  FakeClock clock;
  MicroBatcher b({.queue_capacity = 64, .max_batch_rows = 4,
                  .max_delay = 100000us, .clock = &clock});  // 100ms
  const std::size_t m = b.add_model();
  ASSERT_TRUE(b.try_submit(m, make_request(1)));

  std::atomic<bool> shipped{false};
  MicroBatcher::Batch batch;
  std::thread consumer([&] {
    EXPECT_TRUE(b.next(batch));
    shipped.store(true);
  });

  // Walk virtual time to just inside the window: shipping is impossible
  // (the batch is below budget and the deadline has not passed), so the
  // flag check cannot flake, whatever the thread interleaving.
  clock.advance(99ms);
  std::this_thread::sleep_for(20ms);
  EXPECT_FALSE(shipped.load()) << "batch shipped before its deadline";

  // A request arriving inside the window joins the open batch.
  ASSERT_TRUE(b.try_submit(m, make_request(1)));
  // Crossing the deadline ships it: enqueue + 100ms, measured on the
  // fake clock, bounds the added latency exactly.
  clock.advance(2ms);
  consumer.join();
  EXPECT_TRUE(shipped.load());
  EXPECT_EQ(batch.rows, 2u);
  EXPECT_EQ(batch.requests.size(), 2u);
}

TEST(MicroBatcher, RequestOlderThanMaxDelayShipsWithoutWaiting) {
  FakeClock clock;
  MicroBatcher b({.queue_capacity = 8, .max_batch_rows = 64,
                  .max_delay = 1000us, .clock = &clock});
  const std::size_t m = b.add_model();
  ASSERT_TRUE(b.try_submit(m, make_request(2)));
  clock.advance(2ms);  // the queued request is now past its deadline
  // next() runs on this thread: if the batcher tried to wait out a
  // fresh window nobody would advance the clock and the test would
  // hang; returning proves an over-age request ships immediately.
  MicroBatcher::Batch batch;
  ASSERT_TRUE(b.next(batch));
  EXPECT_EQ(batch.rows, 2u);
}

TEST(MicroBatcher, LateArrivalsJoinTheOpenBatchUntilFull) {
  FakeClock clock;
  MicroBatcher b({.queue_capacity = 64, .max_batch_rows = 4,
                  .max_delay = 1000000us, .clock = &clock});  // 1s window
  const std::size_t m = b.add_model();
  ASSERT_TRUE(b.try_submit(m, make_request(1)));

  MicroBatcher::Batch batch;
  std::thread consumer([&] { EXPECT_TRUE(b.next(batch)); });
  // Three more requests fill the 4-row budget; the consumer must ship
  // without any clock advance (the window never expires in this test).
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(b.try_submit(m, make_request(1)));
  consumer.join();
  EXPECT_EQ(batch.rows, 4u);
  EXPECT_EQ(batch.requests.size(), 4u);
}

TEST(MicroBatcher, CloseDrainsQueuedRequestsThenStops) {
  MicroBatcher b({.queue_capacity = 64, .max_batch_rows = 64,
                  .max_delay = 0us});
  const std::size_t m = b.add_model();
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(b.try_submit(m, make_request(1)));
  b.close();
  EXPECT_FALSE(b.submit(m, make_request(1))) << "submit after close";
  EXPECT_FALSE(b.try_submit(m, make_request(1)));

  MicroBatcher::Batch batch;
  index_t drained = 0;
  while (b.next(batch)) drained += batch.rows;
  EXPECT_EQ(drained, 3u);
}

TEST(MicroBatcher, NextUnblocksOnClose) {
  MicroBatcher b({.queue_capacity = 64});
  (void)b.add_model();
  std::thread closer([&] {
    std::this_thread::sleep_for(10ms);
    b.close();
  });
  MicroBatcher::Batch batch;
  EXPECT_FALSE(b.next(batch))
      << "a consumer blocked on an empty batcher must exit on close";
  closer.join();
}

TEST(MicroBatcher, SubmitBackpressureBlocksUntilSpace) {
  MicroBatcher b({.queue_capacity = 2, .max_batch_rows = 1,
                  .max_delay = 0us});
  const std::size_t m = b.add_model();
  ASSERT_TRUE(b.submit(m, make_request(1)));
  ASSERT_TRUE(b.submit(m, make_request(1)));
  EXPECT_FALSE(b.try_submit(m, make_request(1))) << "queue full";

  std::thread producer([&] {
    EXPECT_TRUE(b.submit(m, make_request(1)));  // blocks until a claim
  });
  std::this_thread::sleep_for(5ms);
  MicroBatcher::Batch batch;
  ASSERT_TRUE(b.next(batch));
  producer.join();
  EXPECT_EQ(b.pending(m), 2u);
}

TEST(MicroBatcher, BlockedProducerIsWokenDuringCoalescingWindow) {
  // Regression: with queue_capacity < max_rows, the requests that fill
  // a batch come from a producer blocked on the full queue.  The
  // consumer's pops during the coalescing window must wake it
  // immediately -- without that wake both sides sleep out the whole
  // max_delay and the batch ships partial.
  MicroBatcher b({.queue_capacity = 1, .max_batch_rows = 3,
                  .max_delay = 5000000us});  // 5s: a stall would be seen
  const std::size_t m = b.add_model();
  ASSERT_TRUE(b.submit(m, make_request(1)));

  std::thread producer([&] {
    for (int i = 0; i < 2; ++i) EXPECT_TRUE(b.submit(m, make_request(1)));
  });
  MicroBatcher::Batch batch;
  const auto t0 = std::chrono::steady_clock::now();
  ASSERT_TRUE(b.next(batch));
  const auto waited = std::chrono::steady_clock::now() - t0;
  producer.join();
  EXPECT_EQ(batch.rows, 3u) << "batch must fill from the blocked producer";
  EXPECT_LT(waited, 2s) << "must not sleep out the max_delay window";
}

// ---------------------------------------------------------------------------
// Bounded-wait admission.

TEST(MicroBatcher, SubmitForTimesOutDeterministicallyOnAFullQueue) {
  FakeClock clock;
  MicroBatcher b({.queue_capacity = 1, .max_batch_rows = 1,
                  .max_delay = 0us, .clock = &clock});
  const std::size_t m = b.add_model();
  ASSERT_TRUE(b.try_submit(m, make_request(1)));  // queue now full

  EXPECT_FALSE(b.try_submit(m, make_request(1))) << "non-blocking: full";
  EXPECT_FALSE(b.submit_for(m, make_request(1), 0us)) << "0 timeout = try";

  std::atomic<int> outcome{-1};
  std::thread submitter([&] {
    outcome.store(b.submit_for(m, make_request(1), 10000us) ? 1 : 0);
  });
  // Rendezvous: once the submitter is parked its deadline (computed
  // from now() before parking) is fixed, so the advances below measure
  // against the right zero point.
  while (clock.parked() == 0) std::this_thread::yield();
  // No consumer runs: space never appears, and the submitter can only
  // give up once virtual time passes its deadline.
  clock.advance(9ms);
  std::this_thread::sleep_for(10ms);
  EXPECT_EQ(outcome.load(), -1) << "gave up before the deadline";
  clock.advance(2ms);
  submitter.join();
  EXPECT_EQ(outcome.load(), 0) << "admission must fail at the deadline";
  EXPECT_EQ(b.pending(m), 1u) << "rejected request must not be enqueued";
}

TEST(MicroBatcher, SubmitForAdmitsWhenAClaimFreesSpaceInTime) {
  FakeClock clock;
  MicroBatcher b({.queue_capacity = 1, .max_batch_rows = 1,
                  .max_delay = 0us, .clock = &clock});
  const std::size_t m = b.add_model();
  ASSERT_TRUE(b.try_submit(m, make_request(1)));

  std::atomic<int> outcome{-1};
  std::thread submitter([&] {
    outcome.store(b.submit_for(m, make_request(1), 10000us) ? 1 : 0);
  });
  // A claim frees the single slot; the parked submitter must admit
  // without any clock movement.
  MicroBatcher::Batch batch;
  ASSERT_TRUE(b.next(batch));
  submitter.join();
  EXPECT_EQ(outcome.load(), 1);
  EXPECT_EQ(b.pending(m), 1u);
}

TEST(MicroBatcher, BackpressureWaitCountsTowardSubmittedTimestamp) {
  // `submitted` anchors the latency stats at submit entry while
  // `enqueued` anchors the coalescing deadline at admission: a request
  // that sat out backpressure must report the wait but still get a
  // full max_delay window.
  FakeClock clock;
  MicroBatcher b({.queue_capacity = 1, .max_batch_rows = 1,
                  .max_delay = 0us, .clock = &clock});
  const std::size_t m = b.add_model();
  const auto t0 = clock.now();
  ASSERT_TRUE(b.try_submit(m, make_request(1)));  // queue full

  std::thread submitter([&] {
    EXPECT_TRUE(b.submit_for(m, make_request(1), 60000us));
  });
  while (clock.parked() == 0) std::this_thread::yield();
  clock.advance(3ms);  // virtual backpressure wait
  MicroBatcher::Batch batch;
  ASSERT_TRUE(b.next(batch));  // frees the slot; submitter admits
  submitter.join();

  ASSERT_TRUE(b.next(batch));
  ASSERT_EQ(batch.requests.size(), 1u);
  EXPECT_EQ(batch.requests[0].submitted, t0)
      << "stats anchor is submit entry, before the backpressure wait";
  EXPECT_EQ(batch.requests[0].enqueued, t0 + 3ms)
      << "deadline anchor is admission, after the wait";
}

TEST(MicroBatcher, SubmitForRefusesAfterClose) {
  MicroBatcher b({.queue_capacity = 4});
  const std::size_t m = b.add_model();
  b.close();
  EXPECT_FALSE(b.submit_for(m, make_request(1), 1000us));
  EXPECT_FALSE(b.try_submit(m, make_request(1)));
}

// ---------------------------------------------------------------------------
// QoS claim policy.

TEST(MicroBatcherQos, RejectsInvalidPriorityAndWeight) {
  // Priority is a uint8 enum class: any raw value converts legally, and
  // it indexes per-class scheduler state -- add_model must gate it.
  MicroBatcher b({.queue_capacity = 4});
  EXPECT_THROW((void)b.add_model({.priority = static_cast<Priority>(3)}),
               Error);
  EXPECT_THROW((void)b.add_model({.weight = 0}), Error);
}

TEST(MicroBatcherQos, PolicyResolvesInheritedFields) {
  MicroBatcher b({.queue_capacity = 16, .max_batch_rows = 32,
                  .max_delay = 700us});
  const auto a = b.add_model();  // defaults
  const auto c = b.add_model({.priority = Priority::kInteractive,
                              .weight = 5,
                              .max_delay = 50us,
                              .max_batch_rows = 4});
  EXPECT_EQ(b.policy(a).priority, Priority::kBatch);
  EXPECT_EQ(b.policy(a).weight, 1u);
  EXPECT_EQ(b.policy(a).max_delay, 700us);
  EXPECT_EQ(b.policy(a).max_batch_rows, 32u);
  EXPECT_EQ(b.policy(c).priority, Priority::kInteractive);
  EXPECT_EQ(b.policy(c).weight, 5u);
  EXPECT_EQ(b.policy(c).max_delay, 50us);
  EXPECT_EQ(b.policy(c).max_batch_rows, 4u);
}

TEST(MicroBatcherQos, PerModelRowBudgetOverrideApplies) {
  MicroBatcher b({.queue_capacity = 64, .max_batch_rows = 8,
                  .max_delay = 0us});
  const auto small = b.add_model({.max_batch_rows = 2});
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(b.try_submit(small, make_request(1)));
  }
  MicroBatcher::Batch batch;
  ASSERT_TRUE(b.next(batch));
  EXPECT_EQ(batch.rows, 2u) << "model override, not the batcher default";
}

TEST(MicroBatcherQos, StrictPriorityBetweenClasses) {
  MicroBatcher b({.queue_capacity = 64, .max_batch_rows = 1,
                  .max_delay = 0us});
  const auto inter = b.add_model({.priority = Priority::kInteractive});
  const auto batchm = b.add_model({.priority = Priority::kBatch});
  const auto bg = b.add_model({.priority = Priority::kBackground});

  // Enqueue in anti-priority order: claims must still come out strictly
  // interactive, batch, background.
  ASSERT_TRUE(b.try_submit(bg, make_request(1)));
  ASSERT_TRUE(b.try_submit(batchm, make_request(1)));
  ASSERT_TRUE(b.try_submit(inter, make_request(1)));

  MicroBatcher::Batch batch;
  ASSERT_TRUE(b.next(batch));
  EXPECT_EQ(batch.model, inter);
  EXPECT_EQ(batch.priority, Priority::kInteractive);
  ASSERT_TRUE(b.next(batch));
  EXPECT_EQ(batch.model, batchm);
  ASSERT_TRUE(b.next(batch));
  EXPECT_EQ(batch.model, bg);
  EXPECT_EQ(batch.priority, Priority::kBackground);
}

TEST(MicroBatcherQos, StarvationBoundServesBackloggedLowerClass) {
  MicroBatcher b({.queue_capacity = 64, .max_batch_rows = 1,
                  .max_delay = 0us, .starvation_bound = 4});
  const auto inter = b.add_model({.priority = Priority::kInteractive});
  const auto bg = b.add_model({.priority = Priority::kBackground});
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(b.try_submit(inter, make_request(1)));
    ASSERT_TRUE(b.try_submit(bg, make_request(1)));
  }

  // With both classes backlogged, background is served exactly every
  // fifth claim (passed over starvation_bound = 4 times, then boosted).
  std::vector<std::size_t> order;
  MicroBatcher::Batch batch;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(b.next(batch));
    order.push_back(batch.model);
  }
  const std::vector<std::size_t> want = {inter, inter, inter, inter, bg,
                                         inter, inter, inter, inter, bg};
  EXPECT_EQ(order, want);
}

TEST(MicroBatcherQos, WeightedDeficitShareWithinClass) {
  MicroBatcher b({.queue_capacity = 256, .max_batch_rows = 1,
                  .max_delay = 0us});
  const auto heavy = b.add_model({.weight = 3});
  const auto light = b.add_model({.weight = 1});
  for (int i = 0; i < 80; ++i) {
    ASSERT_TRUE(b.try_submit(heavy, make_request(1)));
    ASSERT_TRUE(b.try_submit(light, make_request(1)));
  }

  int heavy_claims = 0, light_claims = 0;
  MicroBatcher::Batch batch;
  for (int i = 0; i < 80; ++i) {
    ASSERT_TRUE(b.next(batch));
    (batch.model == heavy ? heavy_claims : light_claims)++;
  }
  // 3:1 weights over a backlogged interval: 60/20 of 80 single-row
  // claims, give or take the replenish transient.
  EXPECT_NEAR(heavy_claims, 60, 3);
  EXPECT_NEAR(light_claims, 20, 3);
}

TEST(MicroBatcherQos, DeficitAccountsRowsNotClaims) {
  // Equal weights but 4-row vs 1-row requests: fair share is measured
  // in rows, so the 1-row model gets ~4x the claims.
  MicroBatcher b({.queue_capacity = 512, .max_batch_rows = 4,
                  .max_delay = 0us});
  const auto big = b.add_model();    // 4-row requests
  const auto small = b.add_model();  // 1-row requests
  // A claim of `small` coalesces 4 of its 1-row requests, so it burns
  // backlog 4x as fast: feed both deep enough to stay backlogged for
  // the whole 100 measured claims.
  for (int i = 0; i < 250; ++i) {
    ASSERT_TRUE(b.try_submit(big, make_request(4)));
    ASSERT_TRUE(b.try_submit(small, make_request(1)));
  }

  std::int64_t big_rows = 0, small_rows = 0;
  MicroBatcher::Batch batch;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(b.next(batch));
    (batch.model == big ? big_rows : small_rows) +=
        static_cast<std::int64_t>(batch.rows);
  }
  EXPECT_LE(std::abs(big_rows - small_rows), 8)
      << "row shares must track weights, not claim counts: big "
      << big_rows << " vs small " << small_rows;
}

// ---------------------------------------------------------------------------
// Randomized property test: FIFO claiming, the row-budget rule, and the
// deadline bound, over random request streams on the fake clock.

TEST(MicroBatcherProperty, RandomizedStreamsKeepFifoBudgetAndDeadline) {
  Rng rng(20260730);
  for (int trial = 0; trial < 25; ++trial) {
    FakeClock clock;
    BatcherOptions opts;
    opts.queue_capacity = 4096;
    opts.max_batch_rows = static_cast<index_t>(1 + rng.uniform(16));
    opts.max_delay = std::chrono::microseconds(rng.uniform(3) * 500);
    opts.starvation_bound = 1 + rng.uniform(8);
    opts.clock = &clock;
    MicroBatcher b(opts);

    const std::size_t num_models = 1 + rng.uniform(4);
    std::chrono::microseconds max_any_delay = opts.max_delay;
    for (std::size_t m = 0; m < num_models; ++m) {
      QosPolicy q;
      q.priority = static_cast<Priority>(rng.uniform(kNumPriorities));
      q.weight = static_cast<unsigned>(1 + rng.uniform(4));
      if (rng.bernoulli(0.5)) {
        q.max_delay = std::chrono::microseconds(rng.uniform(4) * 250);
      }
      if (rng.bernoulli(0.5)) {
        q.max_batch_rows = static_cast<index_t>(1 + rng.uniform(24));
      }
      (void)b.add_model(q);
      max_any_delay = std::max(max_any_delay, b.policy(m).max_delay);
    }

    // Expected FIFO order per model, tagged through the input pointer.
    std::vector<std::deque<std::uint64_t>> fifo(num_models);
    std::uint64_t seq = 1;
    std::size_t pending = 0;

    MicroBatcher::Batch batch;
    for (int round = 0; round < 12; ++round) {
      const std::size_t n = rng.uniform(20);
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t m = rng.uniform(num_models);
        const index_t rows = static_cast<index_t>(
            1 + rng.uniform(2 * opts.max_batch_rows));  // some oversize
        ASSERT_TRUE(b.try_submit(m, make_request(rows, seq)));
        fifo[m].push_back(seq++);
        ++pending;
      }
      // Push every queued request past its deadline: the single drain
      // thread below never advances the clock, so next() returning at
      // all (instead of parking in a coalescing window forever) IS the
      // "never held beyond max_delay from enqueue" guarantee.
      clock.advance(max_any_delay + 1us);

      while (pending > 0) {
        ASSERT_TRUE(b.next(batch));
        const QosPolicy pol = b.policy(batch.model);
        EXPECT_EQ(batch.priority, pol.priority);
        ASSERT_FALSE(batch.requests.empty());

        // Row-budget rule: multi-request batches fit the budget; an
        // oversize request ships strictly alone.
        index_t total = 0;
        for (const Request& r : batch.requests) total += r.rows;
        EXPECT_EQ(total, batch.rows);
        if (batch.requests.size() > 1) {
          EXPECT_LE(batch.rows, pol.max_batch_rows);
        }
        if (batch.requests.front().rows > pol.max_batch_rows) {
          EXPECT_EQ(batch.requests.size(), 1u)
              << "oversize first request must ship alone";
        }

        // FIFO claiming per model: requests surface in submit order.
        auto& expect = fifo[batch.model];
        for (const Request& r : batch.requests) {
          ASSERT_FALSE(expect.empty());
          EXPECT_EQ(reinterpret_cast<std::uintptr_t>(r.input),
                    static_cast<std::uintptr_t>(expect.front()))
              << "model " << batch.model << " claimed out of order";
          expect.pop_front();
          --pending;
        }
      }
    }
    b.close();
    EXPECT_FALSE(b.next(batch)) << "drained batcher must stop after close";
    for (std::size_t m = 0; m < num_models; ++m) {
      EXPECT_TRUE(fifo[m].empty()) << "model " << m << " lost requests";
    }
  }
}

}  // namespace
}  // namespace radix::serve

// The wall-clock timer used for throughput metrics.
#include "support/timer.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

namespace radix {
namespace {

TEST(Timer, ElapsedIsNonNegativeAndMonotonic) {
  Timer t;
  const double a = t.seconds();
  const double b = t.seconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
}

TEST(Timer, MeasuresASleep) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  // Generous lower bound: clocks can only over-report a sleep.
  EXPECT_GE(t.millis(), 15.0);
}

TEST(Timer, ResetRestartsTheClock) {
  // No absolute upper bounds: a loaded CI runner can preempt the test
  // for tens of milliseconds.  Only assert that reset moved the origin
  // forward: elapsed-after-reset < elapsed-if-never-reset.
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  const double before = t.millis();
  t.reset();
  EXPECT_LT(t.millis(), before);
}

TEST(Timer, MillisIsSecondsTimesThousand) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  // Successive reads: seconds, then millis, then seconds again.  The
  // middle read must sit between the outer two scaled by 1e3.
  const double s0 = t.seconds();
  const double ms = t.millis();
  const double s1 = t.seconds();
  EXPECT_GE(ms, s0 * 1e3);
  EXPECT_LE(ms, s1 * 1e3);
}

}  // namespace
}  // namespace radix

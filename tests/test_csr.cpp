// Tests for the COO/CSR substrate.
#include "sparse/csr.hpp"

#include <gtest/gtest.h>

#include "sparse/dense.hpp"
#include "support/error.hpp"
#include "support/random.hpp"

namespace radix {
namespace {

Coo<double> random_coo(index_t rows, index_t cols, std::size_t entries,
                       Rng& rng) {
  Coo<double> coo(rows, cols);
  for (std::size_t i = 0; i < entries; ++i) {
    coo.push(static_cast<index_t>(rng.uniform(rows)),
             static_cast<index_t>(rng.uniform(cols)),
             rng.uniform(-1.0, 1.0));
  }
  return coo;
}

TEST(Coo, PushBoundsChecked) {
  Coo<float> coo(2, 3);
  coo.push(1, 2, 1.0f);
  EXPECT_EQ(coo.nnz(), 1u);
  EXPECT_THROW(coo.push(2, 0, 1.0f), DimensionError);
  EXPECT_THROW(coo.push(0, 3, 1.0f), DimensionError);
}

TEST(Csr, EmptyMatrix) {
  Csr<float> m;
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
  EXPECT_EQ(m.nnz(), 0u);
  m.check_invariants();
}

TEST(Csr, AllZeroMatrixHasShape) {
  Csr<float> m(4, 7);
  EXPECT_EQ(m.rows(), 4u);
  EXPECT_EQ(m.cols(), 7u);
  EXPECT_EQ(m.nnz(), 0u);
  EXPECT_EQ(m.count_empty_rows(), 4u);
  EXPECT_EQ(m.count_empty_cols(), 7u);
}

TEST(Csr, FromCooSortsColumns) {
  Coo<double> coo(2, 5);
  coo.push(0, 4, 1.0);
  coo.push(0, 1, 2.0);
  coo.push(0, 3, 3.0);
  coo.push(1, 0, 4.0);
  const auto m = Csr<double>::from_coo(coo);
  m.check_invariants();
  ASSERT_EQ(m.row_nnz(0), 3u);
  EXPECT_EQ(m.row_cols(0)[0], 1u);
  EXPECT_EQ(m.row_cols(0)[1], 3u);
  EXPECT_EQ(m.row_cols(0)[2], 4u);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m.at(0, 3), 3.0);
}

TEST(Csr, FromCooCombinesDuplicatesAdditively) {
  Coo<double> coo(1, 3);
  coo.push(0, 1, 2.5);
  coo.push(0, 1, 1.5);
  coo.push(0, 2, 1.0);
  const auto m = Csr<double>::from_coo(coo);
  EXPECT_EQ(m.nnz(), 2u);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 4.0);
  EXPECT_DOUBLE_EQ(m.at(0, 2), 1.0);
}

TEST(Csr, AtReturnsZeroForMissingEntry) {
  Coo<double> coo(2, 2);
  coo.push(0, 0, 1.0);
  const auto m = Csr<double>::from_coo(coo);
  EXPECT_DOUBLE_EQ(m.at(1, 1), 0.0);
  EXPECT_FALSE(m.contains(1, 1));
  EXPECT_TRUE(m.contains(0, 0));
}

TEST(Csr, IdentityAndOnes) {
  const auto eye = Csr<float>::identity(4);
  EXPECT_EQ(eye.nnz(), 4u);
  for (index_t i = 0; i < 4; ++i) {
    EXPECT_FLOAT_EQ(eye.at(i, i), 1.0f);
  }
  const auto ones = Csr<float>::ones(2, 3);
  EXPECT_EQ(ones.nnz(), 6u);
  EXPECT_EQ(ones.count_empty_rows(), 0u);
  EXPECT_EQ(ones.count_empty_cols(), 0u);
  ones.check_invariants();
}

TEST(Csr, TransposeIsInvolution) {
  Rng rng(1);
  const auto m = Csr<double>::from_coo(random_coo(10, 7, 30, rng));
  const auto t = m.transpose();
  t.check_invariants();
  EXPECT_EQ(t.rows(), m.cols());
  EXPECT_EQ(t.cols(), m.rows());
  EXPECT_EQ(t.transpose(), m);
}

TEST(Csr, TransposeMatchesDense) {
  Rng rng(2);
  const auto m = Csr<double>::from_coo(random_coo(6, 9, 25, rng));
  const Dense dm = to_dense(m);
  const Dense dt = to_dense(m.transpose());
  for (index_t r = 0; r < 6; ++r) {
    for (index_t c = 0; c < 9; ++c) {
      EXPECT_DOUBLE_EQ(dm.at(r, c), dt.at(c, r));
    }
  }
}

TEST(Csr, MapAndPattern) {
  Coo<double> coo(2, 2);
  coo.push(0, 1, -3.5);
  coo.push(1, 0, 2.0);
  const auto m = Csr<double>::from_coo(coo);
  const auto doubled = m.map<double>([](double v) { return 2.0 * v; });
  EXPECT_DOUBLE_EQ(doubled.at(0, 1), -7.0);
  const auto p = m.pattern();
  EXPECT_EQ(p.at(0, 1), 1);
  EXPECT_EQ(p.nnz(), m.nnz());
}

TEST(Csr, EmptyRowColCounts) {
  Coo<double> coo(3, 4);
  coo.push(0, 1, 1.0);
  coo.push(2, 1, 1.0);
  const auto m = Csr<double>::from_coo(coo);
  EXPECT_EQ(m.count_empty_rows(), 1u);   // row 1
  EXPECT_EQ(m.count_empty_cols(), 3u);   // cols 0, 2, 3
}

TEST(Csr, InvariantViolationsDetected) {
  // Unsorted columns within a row.
  EXPECT_THROW(
      Csr<float>(1, 3, {0, 2}, {2, 0}, {1.0f, 1.0f}).check_invariants(),
      InternalError);
  // Column out of range.
  EXPECT_THROW(Csr<float>(1, 2, {0, 1}, {5}, {1.0f}), InternalError);
  // rowptr not ending at nnz.
  EXPECT_THROW(Csr<float>(1, 2, {0, 2}, {0}, {1.0f}), InternalError);
}

TEST(Csr, FromCooRejectsOutOfRange) {
  Coo<double> coo(2, 2);
  coo.row.push_back(5);  // bypass push() checks
  coo.col.push_back(0);
  coo.val.push_back(1.0);
  EXPECT_THROW(Csr<double>::from_coo(coo), DimensionError);
}

TEST(Csr, RoundTripThroughDense) {
  Rng rng(3);
  const auto m = Csr<double>::from_coo(random_coo(8, 8, 20, rng));
  const auto back = from_dense(to_dense(m));
  EXPECT_EQ(to_dense(back).data(), to_dense(m).data());
}

// Pattern sweep: random matrices keep invariants after canonicalization.
class CsrRandomSweep : public ::testing::TestWithParam<int> {};

TEST_P(CsrRandomSweep, InvariantsHold) {
  Rng rng(GetParam());
  const index_t rows = 1 + static_cast<index_t>(rng.uniform(50));
  const index_t cols = 1 + static_cast<index_t>(rng.uniform(50));
  const std::size_t entries = rng.uniform(200);
  const auto m = Csr<double>::from_coo(random_coo(rows, cols, entries, rng));
  m.check_invariants();
  EXPECT_LE(m.nnz(), entries);
  // nnz matches dense count.
  EXPECT_EQ(m.nnz(), to_dense(m).nnz());
}

INSTANTIATE_TEST_SUITE_P(Sweep, CsrRandomSweep, ::testing::Range(0, 12));

}  // namespace
}  // namespace radix

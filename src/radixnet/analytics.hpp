// Closed-form analytics of RadiX-Net topologies (Section III.B and the
// Appendix): densities (eq. (4)-(6)), exact path counts (Theorem 1,
// generalized to the divisor case of constraint 2), and size predictions.
// These are computed from the spec alone, without materializing the
// topology, and are cross-checked against measured values in the tests.
#pragma once

#include <cstdint>

#include "radixnet/spec.hpp"
#include "support/biguint.hpp"

namespace radix {

/// Exact density of the RadiX-Net topology, eq. (4):
///   Delta = (1/N') * (sum_i N_i D_{i-1} D_i) / (sum_i D_{i-1} D_i).
double exact_density(const RadixNetSpec& spec);

/// First-order approximation, eq. (5): Delta ~= mu / N'.
double approx_density_mu(const RadixNetSpec& spec);

/// d = log_mu N' (the "number of radices per system" scale of eq. (6)).
double radix_depth(const RadixNetSpec& spec);

/// Second approximation, eq. (6): Delta ~= mu^(1-d) for given mu, d.
double approx_density_mu_d(double mu, double d);

/// Exact number of paths between every input/output pair (the symmetry
/// constant of Theorem 1).  For specs whose systems all share product N'
/// this equals (N')^(M-1) * prod_{i=1..Mbar-1} D_i; when the last
/// system's product N'' properly divides N' the count generalizes to
/// (N')^(M-2) * N'' * prod D_i (each middle boundary contributes its
/// system's product).
BigUInt predicted_path_count(const RadixNetSpec& spec);

/// Total edge count of the topology, without building it:
///   sum_i N_i * D_{i-1} * D_i * N'.
std::uint64_t predicted_edge_count(const RadixNetSpec& spec);

/// Total node count: sum_i D_i * N'.
std::uint64_t predicted_node_count(const RadixNetSpec& spec);

/// Approximate CSR storage in bytes for a pattern topology (8-byte row
/// pointers amortized + 4-byte column indices + 1-byte values).
std::uint64_t predicted_storage_bytes(const RadixNetSpec& spec);

/// Edge count of the dense DNN on the same layer widths.
std::uint64_t dense_edge_count(const RadixNetSpec& spec);

}  // namespace radix

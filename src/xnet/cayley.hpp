// Explicit X-Linear layers from Cayley graphs (Prabhu et al. [14]).
//
// The deterministic X-Net variant takes a group G of order n and a
// connection (generator) set S, and connects node g to node g*s for every
// s in S.  As the paper notes, this forces adjacent layers to have the
// *same* number of nodes -- the restriction RadiX-Net removes.  We
// implement the cyclic-group case (circulant layers), which is the
// standard concrete instantiation: node r connects to (r + s) mod n for
// s in S.
#pragma once

#include "graph/fnnt.hpp"

namespace radix {

/// Circulant Cayley layer on Z_n with connection set S (values taken
/// mod n; duplicates collapse).
Csr<pattern_t> cayley_circulant(index_t n, const std::vector<index_t>& s);

/// Standard expander-style connection set of size k: powers of a
/// multiplicative generator g modulo n, {1, g, g^2, ...} union {0}.
/// Falls back to arithmetic offsets {0, 1, 2, ..., k-1} when n is not
/// coprime with g.
std::vector<index_t> cayley_generator_set(index_t n, index_t k,
                                          index_t g = 3);

/// A deterministic Cayley X-Net on `layers`+1 node layers of equal width
/// n, in-degree |S| = k.
Fnnt cayley_xnet(index_t n, index_t k, std::size_t layers);

}  // namespace radix

// Fault injection seam for the serving worker path.
//
// Overload and failure behavior cannot be tested (or benchmarked)
// against a stack that never misbehaves.  FaultInjector is the
// controlled misbehavior: installed through EngineOptions::fault, it is
// invoked by every worker right before a claimed batch runs forward and
// can
//
//   * add latency -- the batch waits `added_latency` on the engine's
//     injected ClockSource before running, modelling a slow shard, a
//     cold cache or a noisy neighbor.  With a FakeClock the wait is
//     virtual (the worker parks until the test advances time), so
//     slow-shard scenarios stay fully deterministic; with the steady
//     clock it is a real timed wait.
//   * fail batches -- with probability `fail_probability` the hook
//     throws FaultInjectedError instead of returning, and the worker
//     completes every request of the batch with that error (the normal
//     forward-error path).
//
// Per-shard targeting composes at the layer above: each Engine takes
// its own injector pointer, and ShardRouterOptions::tune_shard lets a
// test give shard 2 a 5 ms injector while its siblings run clean.
//
// Lifecycle: the injector must outlive every engine it is installed in.
// With a FakeClock, advance virtual time past any pending injected
// latency before shutting the engine down (or call cancel()) so workers
// parked in the latency wait can exit.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>

#include "support/error.hpp"
#include "support/thread.hpp"

namespace radix::serve {

/// Completion error of a batch killed by fault injection.  Derived from
/// Error (not AbortedError): an injected failure happened mid-service,
/// so -- exactly like a real forward error -- it must NOT be retried by
/// the failover layer.
class FaultInjectedError : public Error {
 public:
  explicit FaultInjectedError(const std::string& what)
      : Error("fault injected: " + what) {}
};

struct FaultInjectorOptions {
  /// Wall (or virtual) time added before each claimed batch runs.
  std::chrono::microseconds added_latency{0};
  /// Probability in [0, 1] that a batch fails with FaultInjectedError.
  double fail_probability = 0.0;
  /// Seed of the deterministic per-batch failure draws.
  std::uint64_t seed = 0x9e3779b97f4a7c15ull;
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultInjectorOptions options = {})
      : options_(options) {
    RADIX_REQUIRE(options_.fail_probability >= 0.0 &&
                      options_.fail_probability <= 1.0,
                  "FaultInjector: fail_probability must be in [0, 1]");
    RADIX_REQUIRE(options_.added_latency.count() >= 0,
                  "FaultInjector: added_latency must be >= 0");
  }

  ~FaultInjector() {
    // A fake clock remembers monitors of past waiters; detach before
    // the Monitor member dies.
    if (ClockSource* c = clock_.load(std::memory_order_acquire)) {
      c->forget(monitor_);
    }
  }

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Worker-path hook: waits out added_latency on `clock`, then throws
  /// FaultInjectedError with the configured probability.  Called with
  /// no locks held; several workers may be inside concurrently.
  void on_batch(ClockSource& clock) {
    if (options_.added_latency.count() > 0 && !cancelled()) {
      clock_.store(&clock, std::memory_order_release);
      std::unique_lock lock(monitor_.mutex);
      const auto deadline = clock.now() + options_.added_latency;
      while (clock.now() < deadline && !cancelled()) {
        clock.wait_until(monitor_, lock, deadline);
      }
      delayed_.fetch_add(1, std::memory_order_relaxed);
    }
    if (options_.fail_probability > 0.0) {
      const std::uint64_t n = draws_.fetch_add(1, std::memory_order_relaxed);
      if (u01(options_.seed + n) < options_.fail_probability) {
        failures_.fetch_add(1, std::memory_order_relaxed);
        throw FaultInjectedError("injected batch failure");
      }
    }
  }

  /// Stop delaying: wakes workers parked in the latency wait and makes
  /// subsequent on_batch calls skip it.  For FakeClock teardown where
  /// advancing virtual time past the pending waits is inconvenient.
  void cancel() {
    {
      std::scoped_lock lock(monitor_.mutex);
      cancelled_.store(true, std::memory_order_release);
    }
    monitor_.cv.notify_all();
  }

  /// Batches that served the injected latency (the slow-shard signal
  /// tests rendezvous on).
  std::uint64_t delayed_batches() const noexcept {
    return delayed_.load(std::memory_order_acquire);
  }

  /// Batches killed with FaultInjectedError.
  std::uint64_t injected_failures() const noexcept {
    return failures_.load(std::memory_order_acquire);
  }

 private:
  bool cancelled() const noexcept {
    return cancelled_.load(std::memory_order_acquire);
  }

  // splitmix64 finalizer -> uniform double in [0, 1).
  static double u01(std::uint64_t z) noexcept {
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z ^= z >> 31;
    return static_cast<double>(z >> 11) * 0x1.0p-53;
  }

  FaultInjectorOptions options_;
  Monitor monitor_;
  std::atomic<ClockSource*> clock_{nullptr};
  std::atomic<bool> cancelled_{false};
  std::atomic<std::uint64_t> draws_{0};
  std::atomic<std::uint64_t> delayed_{0};
  std::atomic<std::uint64_t> failures_{0};
};

}  // namespace radix::serve

#include "nn/optimizer.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace radix::nn {

float StepDecay::multiplier(index_t epoch) const {
  RADIX_REQUIRE(period_ > 0, "StepDecay: period must be positive");
  float m = 1.0f;
  for (index_t e = period_; e <= epoch; e += period_) m *= gamma_;
  return m;
}

float CosineAnneal::multiplier(index_t epoch) const {
  RADIX_REQUIRE(total_ > 0, "CosineAnneal: total epochs must be positive");
  const float t =
      std::min(1.0f, static_cast<float>(epoch) / static_cast<float>(total_));
  const float cosine = 0.5f * (1.0f + std::cos(3.14159265358979f * t));
  return floor_ + (1.0f - floor_) * cosine;
}

void Sgd::step(const std::vector<Param>& params) {
  if (momentum_ != 0.0f && velocity_.size() != params.size()) {
    RADIX_REQUIRE(velocity_.empty(),
                  "Sgd: parameter list changed between steps");
    velocity_.resize(params.size());
    for (std::size_t i = 0; i < params.size(); ++i) {
      velocity_[i].assign(params[i].size, 0.0f);
    }
  }
  for (std::size_t i = 0; i < params.size(); ++i) {
    const Param& p = params[i];
    if (momentum_ != 0.0f) {
      RADIX_REQUIRE(velocity_[i].size() == p.size,
                    "Sgd: parameter size changed between steps");
      for (std::size_t k = 0; k < p.size; ++k) {
        float g = p.grad[k] + weight_decay_ * p.value[k];
        velocity_[i][k] = momentum_ * velocity_[i][k] + g;
        p.value[k] -= lr_ * velocity_[i][k];
      }
    } else {
      for (std::size_t k = 0; k < p.size; ++k) {
        const float g = p.grad[k] + weight_decay_ * p.value[k];
        p.value[k] -= lr_ * g;
      }
    }
  }
}

void Adam::step(const std::vector<Param>& params) {
  if (m_.size() != params.size()) {
    RADIX_REQUIRE(m_.empty(), "Adam: parameter list changed between steps");
    m_.resize(params.size());
    v_.resize(params.size());
    for (std::size_t i = 0; i < params.size(); ++i) {
      m_[i].assign(params[i].size, 0.0f);
      v_[i].assign(params[i].size, 0.0f);
    }
  }
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (std::size_t i = 0; i < params.size(); ++i) {
    const Param& p = params[i];
    RADIX_REQUIRE(m_[i].size() == p.size,
                  "Adam: parameter size changed between steps");
    for (std::size_t k = 0; k < p.size; ++k) {
      const float g = p.grad[k];
      m_[i][k] = beta1_ * m_[i][k] + (1.0f - beta1_) * g;
      v_[i][k] = beta2_ * v_[i][k] + (1.0f - beta2_) * g * g;
      const float mhat = m_[i][k] / bc1;
      const float vhat = v_[i][k] / bc2;
      p.value[k] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

}  // namespace radix::nn

// Structured-sparse convolutional patterns (the X-Conv lineage).
//
// X-Nets [14] pair their sparse fully-connected replacement (X-Linear)
// with a sparse convolution replacement (X-Conv).  A convolution *is* a
// structured sparse matrix: flattening the input grid row-major, the
// layer connecting an H x W grid to its stride-s output grid has one
// edge per (output pixel, kernel tap) pair.  These generators emit that
// pattern as a Csr<pattern_t>, so nn::SparseLinear can train
// convolution-shaped layers with no dedicated conv kernel -- exactly the
// "conv as sparse matrix" view of the paper's GraphBLAS lineage.
#pragma once

#include "graph/fnnt.hpp"

namespace radix {

/// 1-D convolution pattern: inputs 0..n-1, outputs at stride `stride`,
/// kernel of `taps` contiguous taps; `pad` zeros implied on each edge
/// (edges to out-of-range taps are simply absent).  Output size is
/// (n + 2*pad - taps) / stride + 1; all parameters must make it >= 1.
Csr<pattern_t> conv1d_pattern(index_t n, index_t taps, index_t stride = 1,
                              index_t pad = 0);

/// 2-D convolution pattern over a flattened (rows x cols) grid with a
/// (kh x kw) kernel; row-major flattening, same padding semantics.
/// Returns the (rows*cols) x (out_rows*out_cols) layer pattern.
Csr<pattern_t> conv2d_pattern(index_t rows, index_t cols, index_t kh,
                              index_t kw, index_t stride = 1,
                              index_t pad = 0);

/// Output grid dimension helper for the 2-D pattern.
index_t conv_out_dim(index_t in, index_t k, index_t stride, index_t pad);

/// A "conv tower": stacked conv2d patterns (all same kernel/stride) from
/// a (rows x cols) grid down as far as the geometry allows, at most
/// `max_layers` layers.  Returns a valid FNNT.
Fnnt conv_tower(index_t rows, index_t cols, index_t k, index_t stride,
                index_t pad, std::size_t max_layers);

}  // namespace radix

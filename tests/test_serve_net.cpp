// End-to-end tests of the networked serving front-end: an in-process
// net::Server fronting an Engine or ShardRouter, driven through
// net::RemoteBackend over a loopback socket.  The load-bearing claims:
// remote submission is bit-exact with a direct fused forward, stats
// fetched over the wire match the in-process snapshot EXACTLY (raw
// histogram grids included), admin verbs round-trip, and a client that
// disconnects mid-request orphans its responses (dropped and counted,
// never written to a dead socket).
#include "net/server.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "net/remote_backend.hpp"
#include "net/socket.hpp"
#include "radixnet/graph_challenge.hpp"
#include "serve/engine.hpp"
#include "serve/router.hpp"
#include "support/random.hpp"

namespace radix::net {
namespace {

using namespace std::chrono_literals;

std::shared_ptr<infer::SparseDnn> make_dnn(index_t neurons,
                                           std::size_t layers,
                                           std::uint64_t seed) {
  Rng rng(seed);
  const auto net = gc::network(neurons, layers, &rng);
  return std::make_shared<infer::SparseDnn>(net.layers, net.bias, gc::kClamp);
}

std::vector<float> direct_forward(const infer::SparseDnn& dnn,
                                  const std::vector<float>& input,
                                  index_t rows) {
  infer::InferenceWorkspace ws;
  const auto y = dnn.forward(input.data(), rows, ws);
  return {y.begin(), y.end()};
}

/// In-process served stack: backend + server, torn down in reverse.
struct Served {
  std::shared_ptr<infer::SparseDnn> dnn;
  std::unique_ptr<serve::Engine> engine;
  std::unique_ptr<serve::ShardRouter> router;
  serve::Backend* backend = nullptr;
  std::unique_ptr<Server> server;

  serve::Backend& local() { return *backend; }

  Served() = default;
  Served(Served&& other) noexcept
      : dnn(std::move(other.dnn)),
        engine(std::move(other.engine)),
        router(std::move(other.router)),
        backend(std::exchange(other.backend, nullptr)),
        server(std::move(other.server)) {}
  Served& operator=(Served&&) = delete;

  ~Served() {
    if (server) server->stop();
    if (backend) backend->shutdown();
  }
};

Served engine_served(serve::EngineOptions engine_options = {.workers = 1},
                     std::size_t layers = 4) {
  Served s;
  s.dnn = make_dnn(1024, layers, 71);
  s.engine = std::make_unique<serve::Engine>(engine_options);
  s.backend = s.engine.get();
  s.engine->add_model(s.dnn, "alpha",
                      {.priority = serve::Priority::kInteractive});
  s.engine->add_model(s.dnn, "beta", {.priority = serve::Priority::kBatch});
  ServerOptions options;
  options.hooks = make_admin_hooks(*s.engine);
  s.server = std::make_unique<Server>(*s.backend, options);
  return s;
}

Served router_served(std::size_t shards = 2) {
  Served s;
  s.dnn = make_dnn(1024, 4, 72);
  s.router = std::make_unique<serve::ShardRouter>(
      serve::ShardRouterOptions{.shards = shards, .engine = {.workers = 1}});
  s.backend = s.router.get();
  s.router->add_model(s.dnn, "alpha",
                      {.priority = serve::Priority::kInteractive});
  ServerOptions options;
  options.hooks = make_admin_hooks(*s.router);
  s.server = std::make_unique<Server>(*s.backend, options);
  return s;
}

TEST(ServeNet, SubmitFutureBitExactAndStatsMatchInProcess) {
  Served s = engine_served();
  RemoteBackend remote(s.server->port());
  EXPECT_TRUE(remote.accepting());

  constexpr index_t kRequests = 24;
  Rng irng(73);
  std::vector<std::vector<float>> inputs;
  std::vector<std::vector<float>> want;
  for (index_t i = 0; i < kRequests; ++i) {
    const index_t rows = 1 + i % 3;
    inputs.push_back(gc::synthetic_input(rows, 1024, 0.4, irng));
    want.push_back(direct_forward(*s.dnn, inputs[i], rows));
  }

  std::vector<std::future<std::vector<float>>> futures;
  for (index_t i = 0; i < kRequests; ++i) {
    auto result = remote.submit(
        serve::InferenceRequest::borrowed(0, inputs[i], 1 + i % 3));
    ASSERT_TRUE(result.admitted());
    EXPECT_NE(result.request_id(), 0u)
        << "the server-assigned RequestId must cross the wire";
    futures.push_back(result.take_future());
  }
  for (index_t i = 0; i < kRequests; ++i) {
    EXPECT_EQ(futures[i].get(), want[i])
        << "remote request " << i << " must be bit-exact";
  }

  // The wire stats ARE the in-process stats: identical counters and
  // identical raw histogram grids, not approximations.
  const serve::ServeStats local = s.local().stats(0);
  const serve::ServeStats wire = remote.stats(0);
  EXPECT_EQ(wire.requests, kRequests);
  EXPECT_EQ(wire.requests, local.requests);
  EXPECT_EQ(wire.rows, local.rows);
  EXPECT_EQ(wire.errors, local.errors);
  EXPECT_EQ(wire.e2e_p99, local.e2e_p99);
  EXPECT_EQ(wire.e2e_hist.raw_counts(), local.e2e_hist.raw_counts());
  EXPECT_EQ(wire.queue_wait_hist.raw_counts(),
            local.queue_wait_hist.raw_counts());
  EXPECT_EQ(wire.batch_rows_hist.raw_counts(),
            local.batch_rows_hist.raw_counts());

  EXPECT_EQ(remote.num_models(), s.local().num_models());
  EXPECT_EQ(remote.pending(0), 0u);
  EXPECT_EQ(remote.find_model("beta"), s.local().find_model("beta"));
  EXPECT_EQ(remote.find_model("nope"), std::nullopt);
}

TEST(ServeNet, SubmitCallbackDeliversOutputAndTiming) {
  Served s = engine_served();
  RemoteBackend remote(s.server->port());

  Rng irng(74);
  const auto input = gc::synthetic_input(2, 1024, 0.4, irng);
  const auto want = direct_forward(*s.dnn, input, 2);

  std::promise<std::vector<float>> delivered;
  serve::RequestTiming timing;
  serve::SubmitOptions opts;
  opts.done = [&](std::span<const float> output,
                  const serve::RequestTiming& t, std::exception_ptr error) {
    timing = t;
    if (error) {
      delivered.set_exception(error);
    } else {
      delivered.set_value({output.begin(), output.end()});
    }
  };
  auto result =
      remote.submit(serve::InferenceRequest::owned(0, input, 2), opts);
  ASSERT_TRUE(result.admitted());
  EXPECT_FALSE(result.has_future()) << "callback submissions carry no future";

  auto future = delivered.get_future();
  ASSERT_EQ(future.wait_for(10s), std::future_status::ready);
  EXPECT_EQ(future.get(), want);
  EXPECT_EQ(timing.request_id, result.request_id());
  EXPECT_GT(timing.total_seconds, 0.0);
  EXPECT_EQ(timing.batch_rows, 2);
}

TEST(ServeNet, ConcurrentCallersShareOneConnection) {
  Served s = router_served(2);
  RemoteBackend remote(s.server->port());

  constexpr std::size_t kThreads = 4;
  constexpr index_t kPerThread = 8;
  std::atomic<std::size_t> mismatches{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(100 + t);
      for (index_t i = 0; i < kPerThread; ++i) {
        const index_t rows = 1 + i % 2;
        const auto input = gc::synthetic_input(rows, 1024, 0.4, rng);
        const auto want = direct_forward(*s.dnn, input, rows);
        auto result = remote.submit(
            serve::InferenceRequest::owned(0, input, rows));
        if (!result.admitted() || result.take_future().get() != want) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_EQ(remote.stats(0).requests, kThreads * kPerThread);
}

TEST(ServeNet, ShutDownBackendRejectsRemoteSubmits) {
  Served s = engine_served();
  RemoteBackend remote(s.server->port());

  // Engine-backed shard_ctl: kDrain quiesces (waits for the backlog,
  // admission stays open), so health stays kUp...
  auto health = remote.shard_ctl(ShardVerb::kDrain, 0);
  ASSERT_EQ(health.size(), 1u);
  EXPECT_EQ(health[0], serve::ShardHealth::kUp);
  // ...and restart/kill need a sharded backend: kError, not a crash.
  EXPECT_THROW(remote.shard_ctl(ShardVerb::kRestart, 0), Error);
  remote.ping();  // the connection survived the failed verb

  // Shutting the backend down closes admission; the remote caller gets
  // the rejection as a VALUE, exactly like an in-process caller.
  s.engine->shutdown();
  EXPECT_EQ(remote.shard_ctl(ShardVerb::kHealth)[0],
            serve::ShardHealth::kDown);
  Rng irng(75);
  const auto input = gc::synthetic_input(1, 1024, 0.4, irng);
  const auto result =
      remote.submit(serve::InferenceRequest::owned(0, input, 1));
  EXPECT_FALSE(result.admitted())
      << "a shut-down backend must reject, not hang, remote submits";
}

TEST(ServeNet, ExpiredDeadlineCompletesWithDeadlineExceeded) {
  Served s = engine_served();
  RemoteBackend remote(s.server->port());

  Rng irng(76);
  const auto input = gc::synthetic_input(1, 1024, 0.4, irng);
  serve::SubmitOptions opts;
  opts.deadline = -1us;  // spent budget: admitted, shed at claim
  auto result =
      remote.submit(serve::InferenceRequest::owned(0, input, 1), opts);
  ASSERT_TRUE(result.admitted());
  EXPECT_THROW(result.get(), serve::DeadlineExceededError);

  const serve::ServeStats wire = remote.stats(0);
  EXPECT_EQ(wire.errors, 1u);
  EXPECT_EQ(wire.expired, 1u);
  EXPECT_EQ(wire.errors, s.local().stats(0).errors);
}

TEST(ServeNet, UnknownModelFailsTheSubmitCall) {
  Served s = engine_served();
  RemoteBackend remote(s.server->port());
  Rng irng(77);
  const auto input = gc::synthetic_input(1, 1024, 0.4, irng);
  EXPECT_THROW(remote.submit(serve::InferenceRequest::owned(99, input, 1)),
               Error);
}

TEST(ServeNet, FailFastRejectsUnderBacklog) {
  // One worker, tiny queue, deep model: keep the worker busy so a
  // fail-fast submit meets a full queue.
  Served s = engine_served({.workers = 1, .queue_capacity = 2}, 12);
  RemoteBackend remote(s.server->port());

  Rng irng(78);
  const auto big = gc::synthetic_input(64, 1024, 0.4, irng);
  std::vector<std::future<std::vector<float>>> admitted;
  for (int i = 0; i < 6; ++i) {
    auto result =
        remote.submit(serve::InferenceRequest::borrowed(0, big, 64));
    if (result.admitted()) admitted.push_back(result.take_future());
  }

  bool rejected = false;
  const auto one = gc::synthetic_input(1, 1024, 0.4, irng);
  for (int i = 0; i < 200 && !rejected; ++i) {
    serve::SubmitOptions opts;
    opts.admission = serve::Admission::kFailFast;
    auto result =
        remote.submit(serve::InferenceRequest::borrowed(0, one, 1), opts);
    if (result.admitted()) {
      (void)result.take_future();  // let it complete; reader owns delivery
    } else {
      rejected = true;
    }
  }
  EXPECT_TRUE(rejected)
      << "kFailFast against a saturated remote queue must reject";
  for (auto& f : admitted) (void)f.get();
}

TEST(ServeNet, AdminVerbsAgainstRouter) {
  Served s = router_served(2);
  RemoteBackend remote(s.server->port());

  remote.ping();

  const auto models = remote.list_models();
  ASSERT_EQ(models.size(), 1u);
  EXPECT_EQ(models[0].id, 0u);
  EXPECT_EQ(models[0].name, "alpha");
  EXPECT_EQ(models[0].input_width, 1024u);
  EXPECT_EQ(models[0].output_width, 1024u);
  EXPECT_EQ(models[0].priority, serve::Priority::kInteractive);
  EXPECT_FALSE(models[0].retired);
  EXPECT_EQ(models[0].version, 1u);

  // Serve a little traffic so class stats have content, then compare
  // the wire view against the router's own merged snapshot.
  Rng irng(79);
  for (int i = 0; i < 6; ++i) {
    const auto input = gc::synthetic_input(1, 1024, 0.4, irng);
    (void)remote.submit(serve::InferenceRequest::owned(0, input, 1)).get();
  }
  const auto local = s.router->class_stats(serve::Priority::kInteractive);
  const auto wire = remote.class_stats(serve::Priority::kInteractive);
  EXPECT_EQ(wire.requests, 6u);
  EXPECT_EQ(wire.requests, local.requests);
  EXPECT_EQ(wire.e2e_hist.raw_counts(), local.e2e_hist.raw_counts());

  const auto metrics = remote.metrics_text();
  EXPECT_NE(metrics.find("# HELP"), std::string::npos);
  EXPECT_NE(metrics.find("radix_serve_shard_health"), std::string::npos);

  // Lifecycle round-trip: drain -> restart -> kill -> restart.
  auto health = remote.shard_ctl(ShardVerb::kHealth);
  ASSERT_EQ(health.size(), 2u);
  EXPECT_EQ(health[0], serve::ShardHealth::kUp);
  health = remote.shard_ctl(ShardVerb::kDrain, 0);
  EXPECT_NE(health[0], serve::ShardHealth::kUp);
  health = remote.shard_ctl(ShardVerb::kRestart, 0);
  EXPECT_EQ(health[0], serve::ShardHealth::kUp);
  health = remote.shard_ctl(ShardVerb::kKill, 1);
  EXPECT_EQ(health[1], serve::ShardHealth::kDown);
  health = remote.shard_ctl(ShardVerb::kRestart, 1);
  EXPECT_EQ(health[1], serve::ShardHealth::kUp);
}

TEST(ServeNet, ClientDisconnectOrphansLateResponses) {
  // A deep model and one worker: queue several slow requests from a raw
  // socket, then vanish.  The server must notice the EOF, complete the
  // backend requests anyway (it cannot un-submit them), and DROP the
  // responses -- counted as orphaned, never written to a dead fd.
  Served s = engine_served({.workers = 1}, 12);

  Rng irng(80);
  const auto input = gc::synthetic_input(64, 1024, 0.4, irng);
  {
    Fd fd = connect_tcp(s.server->port());
    for (int i = 0; i < 8; ++i) {
      std::vector<std::uint8_t> body;
      WireWriter w(body);
      w.u64(0);                                  // model
      w.u32(64);                                 // rows
      w.u8(static_cast<std::uint8_t>(serve::Admission::kBlock));
      w.i64(0);                                  // admission timeout
      w.i64(0);                                  // deadline
      w.u64(0);                                  // trace id
      w.floats(input);
      send_frame(fd, MsgType::kSubmit, static_cast<std::uint64_t>(i), body);
    }
  }  // fd closes here: disconnect with up to 8 requests in flight

  const auto deadline = std::chrono::steady_clock::now() + 10s;
  while (s.server->orphaned_responses() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(10ms);
  }
  EXPECT_GT(s.server->orphaned_responses(), 0u);

  // The server is still healthy for other clients afterwards.
  RemoteBackend remote(s.server->port());
  remote.ping();
  const auto small = gc::synthetic_input(1, 1024, 0.4, irng);
  EXPECT_EQ(remote.submit(serve::InferenceRequest::owned(0, small, 1)).get(),
            direct_forward(*s.dnn, small, 1));
}

TEST(ServeNet, LocalShutdownDrainsAndStopsAdmitting) {
  Served s = engine_served();
  auto remote = std::make_unique<RemoteBackend>(s.server->port());

  Rng irng(81);
  const auto input = gc::synthetic_input(1, 1024, 0.4, irng);
  auto future =
      remote->submit(serve::InferenceRequest::owned(0, input, 1))
          .take_future();
  remote->shutdown();  // waits for the in-flight completion
  EXPECT_FALSE(remote->accepting());
  EXPECT_EQ(future.get(), direct_forward(*s.dnn, input, 1))
      << "local shutdown must drain, not drop, in-flight requests";
  EXPECT_FALSE(
      remote->submit(serve::InferenceRequest::owned(0, input, 1)).admitted());
  remote->shutdown();  // idempotent
  remote.reset();

  // The server never noticed anything but a clean disconnect.
  EXPECT_FALSE(s.server->stopped());
  EXPECT_EQ(s.server->orphaned_responses(), 0u);
}

TEST(ServeNet, ShutdownVerbStopsTheServer) {
  Served s = engine_served();
  RemoteBackend remote(s.server->port());
  EXPECT_FALSE(s.server->stopped());
  remote.server_shutdown();
  s.server->wait();
  EXPECT_TRUE(s.server->stopped());
  EXPECT_GE(s.server->connections_accepted(), 1u);
}

}  // namespace
}  // namespace radix::net

// Property tests for the fused, zero-allocation inference path: both
// adaptive-dispatch arms (scatter / gather), forced and automatic, must
// be bit-exact against a straight-line reference over randomized
// RadiX-Net stacks, batches, biases and clamp values -- and repeated
// forward calls through one InferenceWorkspace must perform zero heap
// allocations.
#include "infer/sparse_dnn.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

// The replacement operator new below is malloc-backed, so pairing it
// with free() is correct; GCC cannot see that and warns at every
// allocator call site in this TU.
#if defined(__GNUC__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

#include "radixnet/graph_challenge.hpp"
#include "sparse/coo.hpp"
#include "sparse/csr.hpp"
#include "support/random.hpp"

// ---------------------------------------------------------------------------
// Global operator new/delete replacement counting allocations, so the
// steady-state zero-allocation contract of the workspace API is a test,
// not a comment.  Counting is off except inside the measured region.
// ---------------------------------------------------------------------------
namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
std::atomic<bool> g_count_allocs{false};

void note_alloc() noexcept {
  if (g_count_allocs.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
}
}  // namespace

void* operator new(std::size_t size) {
  note_alloc();
  if (void* p = std::malloc(size > 0 ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  note_alloc();
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(align),
                     size > 0 ? size : 1) != 0) {
    throw std::bad_alloc();
  }
  return p;
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace radix {
namespace {

// Straight-line reference of the challenge rule.  Walks each output's
// inputs in ascending index order via the transposed layer -- the same
// accumulation order both fused arms use -- and mirrors the engine's
// uniform-weight detection ((sum x) * w rounds differently from
// sum(x * w), exactly as the specialized kernels do).
std::vector<float> straight_forward(const std::vector<Csr<float>>& layers,
                                    const std::vector<float>& biases,
                                    float clamp,
                                    const std::vector<float>& input,
                                    index_t batch) {
  std::vector<float> cur = input;
  for (std::size_t l = 0; l < layers.size(); ++l) {
    const Csr<float> wt = layers[l].transpose();
    const index_t m = layers[l].rows();
    const index_t n = layers[l].cols();
    const auto& vals = layers[l].values();
    const bool uniform =
        std::all_of(vals.begin(), vals.end(),
                    [&](float v) { return v == vals.front(); });
    const float scale = uniform && !vals.empty() ? vals.front() : 1.0f;
    std::vector<float> next(static_cast<std::size_t>(batch) * n);
    for (index_t b = 0; b < batch; ++b) {
      const float* xb = cur.data() + static_cast<std::size_t>(b) * m;
      for (index_t c = 0; c < n; ++c) {
        float acc = 0.0f;
        for (offset_t k = wt.rowptr()[c]; k < wt.rowptr()[c + 1]; ++k) {
          if (uniform) {
            acc += xb[wt.colind()[k]];
          } else {
            acc += xb[wt.colind()[k]] * wt.values()[k];
          }
        }
        float v = acc * scale + biases[l];
        if (v < 0.0f) v = 0.0f;
        if (clamp > 0.0f && v > clamp) v = clamp;
        next[static_cast<std::size_t>(b) * n + c] = v;
      }
    }
    cur = std::move(next);
  }
  return cur;
}

Csr<float> random_layer(index_t rows, index_t cols, double density,
                        Rng& rng) {
  Coo<float> coo(rows, cols);
  for (index_t r = 0; r < rows; ++r) {
    for (index_t c = 0; c < cols; ++c) {
      if (rng.bernoulli(density)) {
        coo.push(r, c, static_cast<float>(rng.uniform(-1.0, 1.0)));
      }
    }
  }
  return Csr<float>::from_coo(coo);
}

// Nonnegative input with a controlled zero fraction; some rows fully
// dead ("empty-ish batches" exercise the scatter arm's row skip).
std::vector<float> random_input(index_t batch, index_t width,
                                double nonzero_fraction, Rng& rng) {
  std::vector<float> x(static_cast<std::size_t>(batch) * width, 0.0f);
  for (index_t b = 0; b < batch; ++b) {
    if (b % 4 == 3) continue;  // every fourth row all-zero
    for (index_t c = 0; c < width; ++c) {
      if (rng.bernoulli(nonzero_fraction)) {
        x[static_cast<std::size_t>(b) * width + c] =
            static_cast<float>(rng.uniform(0.0, 2.0));
      }
    }
  }
  return x;
}

void expect_bit_exact(std::span<const float> got,
                      const std::vector<float>& want, const char* tag) {
  ASSERT_EQ(got.size(), want.size()) << tag;
  for (std::size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(got[i], want[i]) << tag << " at " << i;
  }
}

// Run both forced arms and auto dispatch against the reference.
void check_all_arms(const std::vector<Csr<float>>& layers,
                    const std::vector<float>& biases, float clamp,
                    const std::vector<float>& x, index_t batch) {
  infer::SparseDnn dnn(layers, biases, clamp);
  const auto want = straight_forward(layers, biases, clamp, x, batch);
  infer::InferenceWorkspace ws;
  for (infer::Kernel arm : {infer::Kernel::kScatter, infer::Kernel::kGather,
                            infer::Kernel::kAuto}) {
    ws.force_kernel(arm);
    const auto got = dnn.forward(x.data(), batch, ws);
    const char* tag = arm == infer::Kernel::kScatter  ? "scatter"
                      : arm == infer::Kernel::kGather ? "gather"
                                                      : "auto";
    expect_bit_exact(got, want, tag);
    ASSERT_EQ(ws.last_dispatch().size(), layers.size());
    if (arm != infer::Kernel::kAuto) {
      for (const auto& d : ws.last_dispatch()) EXPECT_EQ(d.chosen, arm);
    }
  }
}

TEST(SparseDnnFused, RandomStacksBitExactAcrossArms) {
  for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    Rng rng(seed);
    // Random chained widths, depth 2..4, mixed densities.
    const std::size_t depth = 2 + static_cast<std::size_t>(rng.uniform(3));
    std::vector<index_t> widths(depth + 1);
    for (auto& w : widths) w = 3 + static_cast<index_t>(rng.uniform(30));
    std::vector<Csr<float>> layers;
    std::vector<float> biases;
    for (std::size_t l = 0; l < depth; ++l) {
      layers.push_back(
          random_layer(widths[l], widths[l + 1], 0.35, rng));
      biases.push_back(static_cast<float>(rng.uniform(-0.5, 0.5)));
    }
    for (float clamp : {0.0f, 0.01f, 2.0f}) {
      for (index_t batch : {index_t{1}, index_t{9}, index_t{17}}) {
        const auto x = random_input(batch, widths[0], 0.5, rng);
        check_all_arms(layers, biases, clamp, x, batch);
      }
    }
  }
}

TEST(SparseDnnFused, RadixNetStacksBitExactAcrossArms) {
  // Real RadiX-Net topology, randomized (non-uniform) weights and
  // biases; batch 9 exercises the remainder tile (9 = 8 + 1).
  Rng rng(11);
  const Fnnt topo = gc::topology(1024, 4);
  std::vector<Csr<float>> layers;
  std::vector<float> biases;
  for (std::size_t l = 0; l < topo.depth(); ++l) {
    layers.push_back(topo.layer(l).map<float>(
        [&](pattern_t) { return static_cast<float>(rng.uniform(-0.2, 0.4)); }));
    biases.push_back(static_cast<float>(rng.uniform(-0.3, 0.1)));
  }
  Rng irng(5);
  const index_t batch = 9;
  const auto x = gc::synthetic_input(batch, 1024, 0.3, irng);
  for (float clamp : {0.0f, gc::kClamp}) {
    check_all_arms(layers, biases, clamp, x, batch);
  }
}

TEST(SparseDnnFused, UniformWeightNetworkBitExactAcrossArms) {
  // Challenge preset: every layer stores one repeated weight, so the
  // engine takes the uniform-specialized kernels; both arms and the
  // uniform-aware reference must still agree bitwise.
  Rng rng(4);
  const auto net = gc::network(1024, 4, &rng);
  std::vector<float> biases(net.layers.size(), net.bias);
  Rng irng(6);
  for (index_t batch : {index_t{1}, index_t{8}, index_t{13}}) {
    const auto x = gc::synthetic_input(batch, 1024, 0.4, irng);
    check_all_arms(net.layers, biases, gc::kClamp, x, batch);
  }
}

TEST(SparseDnnFused, SaturatingClampAndEmptyBatch) {
  Rng rng(7);
  std::vector<Csr<float>> layers = {random_layer(10, 12, 0.5, rng),
                                    random_layer(12, 8, 0.5, rng)};
  std::vector<float> biases = {5.0f, 5.0f};  // drive everything positive
  // clamp well below the bias: every active output saturates.
  check_all_arms(layers, biases, /*clamp=*/0.25f,
                 random_input(6, 10, 0.8, rng), 6);
  // Empty batch: all arms must return an empty span and record stats.
  infer::SparseDnn dnn(layers, biases, 0.25f);
  infer::InferenceWorkspace ws;
  infer::InferenceStats stats;
  const auto y = dnn.forward(nullptr, 0, ws, &stats);
  EXPECT_TRUE(y.empty());
  EXPECT_EQ(stats.edges_processed, 0u);
  EXPECT_EQ(stats.nonzero_outputs, 0u);
}

TEST(SparseDnnFused, RejectsInputAliasingWorkspacePanels) {
  // A span returned by forward aliases a panel; feeding it back while
  // the kernels rewrite (or reserve() reallocates) those panels would
  // corrupt the pass, so the engine must refuse it.
  Rng rng(31);
  std::vector<Csr<float>> layers = {random_layer(8, 8, 0.6, rng)};
  infer::SparseDnn dnn(layers, 0.1f);
  infer::InferenceWorkspace ws;
  const auto x = random_input(2, 8, 0.8, rng);
  const auto y = dnn.forward(x.data(), 2, ws);
  EXPECT_THROW((void)dnn.forward(y.data(), 2, ws), Error);
}

TEST(SparseDnnFused, VectorOverloadMatchesSpanOverload) {
  Rng rng(9);
  std::vector<Csr<float>> layers = {random_layer(14, 9, 0.4, rng)};
  infer::SparseDnn dnn(layers, std::vector<float>{-0.1f}, 2.0f);
  const auto x = random_input(5, 14, 0.6, rng);
  infer::InferenceWorkspace ws;
  const auto span_y = dnn.forward(x.data(), 5, ws);
  const auto vec_y = dnn.forward(x, 5);
  expect_bit_exact(span_y, vec_y, "vector-vs-span");
}

TEST(SparseDnnFused, AutoDispatchTracksActivationDensity) {
  Rng rng(13);
  std::vector<Csr<float>> layers = {random_layer(64, 64, 0.3, rng),
                                    random_layer(64, 64, 0.3, rng)};
  infer::SparseDnn dnn(layers, std::vector<float>{0.0f, 0.0f});
  infer::InferenceWorkspace ws;

  // All-zero input: density 0 -> the scatter arm's row skip wins.
  std::vector<float> zeros(64 * 4, 0.0f);
  (void)dnn.forward(zeros.data(), 4, ws);
  ASSERT_EQ(ws.last_dispatch().size(), 2u);
  EXPECT_EQ(ws.last_dispatch()[0].chosen, infer::Kernel::kScatter);
  EXPECT_DOUBLE_EQ(ws.last_dispatch()[0].input_density, 0.0);
  EXPECT_EQ(ws.last_dispatch()[0].nonzero_outputs, 0u);

  // Fully dense input: density 1 -> gather.
  std::vector<float> ones(64 * 4, 1.0f);
  (void)dnn.forward(ones.data(), 4, ws);
  EXPECT_EQ(ws.last_dispatch()[0].chosen, infer::Kernel::kGather);
  EXPECT_DOUBLE_EQ(ws.last_dispatch()[0].input_density, 1.0);
}

TEST(SparseDnnFused, WorkspaceReuseIsZeroAllocation) {
  Rng rng(21);
  const auto net = gc::network(1024, 4, &rng);
  infer::SparseDnn dnn(net.layers, net.bias, gc::kClamp);
  Rng irng(3);
  const index_t batch = 16;
  const auto x = gc::synthetic_input(batch, 1024, 0.4, irng);

  infer::InferenceWorkspace ws;
  infer::InferenceStats stats;
  // Warm-up sizes the panels and builds any lazy transposes.
  const auto y1 = dnn.forward(x.data(), batch, ws, &stats);
  const std::vector<float> first(y1.begin(), y1.end());
  const float* panel_before = ws.panel_data();
  const std::size_t cap_before = ws.capacity();
  EXPECT_EQ(cap_before, static_cast<std::size_t>(batch) * 1024);

  g_alloc_count.store(0);
  g_count_allocs.store(true);
  const auto y2 = dnn.forward(x.data(), batch, ws, &stats);
  g_count_allocs.store(false);
  const std::uint64_t allocs = g_alloc_count.load();

  EXPECT_EQ(allocs, 0u) << "steady-state forward must not allocate";
  EXPECT_EQ(ws.panel_data(), panel_before);
  EXPECT_EQ(ws.capacity(), cap_before);
  expect_bit_exact(y2, first, "steady-state reuse");
}

TEST(SparseDnnFused, PrewarmMakesFirstForwardZeroAllocation) {
  // Without prewarm, the first forward pays one-time costs: panel
  // sizing, the dispatch-trace reserve, and (on the gather arm) the
  // lazily built transposed layers.  prewarm(WorkspaceHint) pays all of
  // them up front, so even the *first* forward through the hinted
  // workspace is allocation-free -- the property the serving engine
  // relies on at model registration.
  Rng rng(25);
  const auto net = gc::network(1024, 4, &rng);
  infer::SparseDnn dnn(net.layers, net.bias, gc::kClamp);
  Rng irng(4);
  const index_t batch = 8;
  const auto x = gc::synthetic_input(batch, 1024, 0.4, irng);

  infer::InferenceWorkspace ws;
  // Force the gather arm: every layer must find its transpose already
  // cached (auto dispatch would also be covered, but this pins the
  // worst case).
  ws.force_kernel(infer::Kernel::kGather);
  dnn.prewarm({.max_batch = batch, .workspace = &ws});
  EXPECT_EQ(ws.capacity(), static_cast<std::size_t>(batch) * 1024);

  g_alloc_count.store(0);
  g_count_allocs.store(true);
  const auto y1 = dnn.forward(x.data(), batch, ws);
  g_count_allocs.store(false);
  EXPECT_EQ(g_alloc_count.load(), 0u)
      << "first forward after prewarm must not allocate";

  // Bit-exact against an un-prewarmed engine: prewarm changes when the
  // caches are built, never what the pass computes.
  infer::SparseDnn cold(net.layers, net.bias, gc::kClamp);
  infer::InferenceWorkspace cold_ws;
  cold_ws.force_kernel(infer::Kernel::kGather);
  const auto y2 = cold.forward(x.data(), batch, cold_ws);
  expect_bit_exact(y1, std::vector<float>(y2.begin(), y2.end()), "prewarm");

  // Idempotent, and a null-workspace hint (transposes only) is allowed.
  dnn.prewarm({.max_batch = batch, .workspace = &ws});
  dnn.prewarm();
  g_alloc_count.store(0);
  g_count_allocs.store(true);
  (void)dnn.forward(x.data(), batch, ws);
  g_count_allocs.store(false);
  EXPECT_EQ(g_alloc_count.load(), 0u);
}

TEST(SparseDnnFused, WorkspaceGrowsMonotonically) {
  Rng rng(23);
  std::vector<Csr<float>> layers = {random_layer(8, 32, 0.5, rng)};
  infer::SparseDnn dnn(layers, 0.0f);
  infer::InferenceWorkspace ws;
  (void)dnn.forward(std::vector<float>(2 * 8, 1.0f).data(), 2, ws);
  EXPECT_EQ(ws.capacity(), 2u * 32u);
  (void)dnn.forward(std::vector<float>(6 * 8, 1.0f).data(), 6, ws);
  EXPECT_EQ(ws.capacity(), 6u * 32u);
  // Shrinking batch keeps the larger panels (no thrash).
  (void)dnn.forward(std::vector<float>(1 * 8, 1.0f).data(), 1, ws);
  EXPECT_EQ(ws.capacity(), 6u * 32u);
}

}  // namespace
}  // namespace radix

// Kronecker product of sparse matrices -- the final step of RadiX-Net
// construction (eq. (3)):  W_i  <-  W*_i (x) W_i, where W*_i is the
// D_{i-1} x D_i matrix of ones.
//
// Index convention (matches Van Loan [17] and the paper's Theorem 1
// derivation): for A (m x n) and B (p x q),
//   (A (x) B)[i*p + r][j*q + c] = A[i][j] * B[r][c].
//
// Two kernels are provided: the general sparse (x) sparse product, and a
// fast path for ones(m, n) (x) B, which is the only shape the RadiX-Net
// builder needs and avoids materializing the dense ones factor's index
// arithmetic.
#pragma once

#include "sparse/csr.hpp"

namespace radix {

/// General Kronecker product over ordinary multiplication of T.
template <typename T>
Csr<T> kron(const Csr<T>& a, const Csr<T>& b) {
  const index_t m = a.rows(), n = a.cols();
  const index_t p = b.rows(), q = b.cols();
  const std::size_t out_nnz = a.nnz() * b.nnz();
  const index_t rows = m * p;
  const index_t cols = n * q;

  std::vector<offset_t> rowptr(static_cast<std::size_t>(rows) + 1, 0);
  std::vector<index_t> colind(out_nnz);
  std::vector<T> val(out_nnz);

  // Row (i*p + r) has a.row_nnz(i) * b.row_nnz(r) entries.
  for (index_t i = 0; i < m; ++i) {
    const offset_t an = a.row_nnz(i);
    for (index_t r = 0; r < p; ++r) {
      rowptr[static_cast<std::size_t>(i) * p + r + 1] = an * b.row_nnz(r);
    }
  }
  for (index_t row = 0; row < rows; ++row) rowptr[row + 1] += rowptr[row];

  for (index_t i = 0; i < m; ++i) {
    auto acols = a.row_cols(i);
    auto avals = a.row_vals(i);
    for (index_t r = 0; r < p; ++r) {
      auto bcols = b.row_cols(r);
      auto bvals = b.row_vals(r);
      offset_t w = rowptr[static_cast<std::size_t>(i) * p + r];
      // a's columns are sorted and b's columns are sorted, so emitting in
      // (j, c) lexicographic order keeps the output row sorted because
      // column index is j*q + c.
      for (std::size_t ja = 0; ja < acols.size(); ++ja) {
        const index_t base = acols[ja] * q;
        for (std::size_t jb = 0; jb < bcols.size(); ++jb) {
          colind[w] = base + bcols[jb];
          val[w] = avals[ja] * bvals[jb];
          ++w;
        }
      }
    }
  }
  return Csr<T>(rows, cols, std::move(rowptr), std::move(colind),
                std::move(val));
}

/// Fast path: ones(dr, dc) (x) B, with every implied one equal to
/// `one_value`.  Equivalent to kron(Csr<T>::ones(dr, dc), b).
template <typename T>
Csr<T> kron_ones(index_t dr, index_t dc, const Csr<T>& b) {
  const index_t p = b.rows(), q = b.cols();
  const index_t rows = dr * p;
  const index_t cols = dc * q;
  const std::size_t out_nnz =
      static_cast<std::size_t>(dr) * dc * b.nnz();

  std::vector<offset_t> rowptr(static_cast<std::size_t>(rows) + 1, 0);
  std::vector<index_t> colind(out_nnz);
  std::vector<T> val(out_nnz);

  for (index_t i = 0; i < dr; ++i)
    for (index_t r = 0; r < p; ++r)
      rowptr[static_cast<std::size_t>(i) * p + r + 1] =
          static_cast<offset_t>(dc) * b.row_nnz(r);
  for (index_t row = 0; row < rows; ++row) rowptr[row + 1] += rowptr[row];

  for (index_t i = 0; i < dr; ++i) {
    for (index_t r = 0; r < p; ++r) {
      auto bcols = b.row_cols(r);
      auto bvals = b.row_vals(r);
      offset_t w = rowptr[static_cast<std::size_t>(i) * p + r];
      for (index_t j = 0; j < dc; ++j) {
        const index_t base = j * q;
        for (std::size_t jb = 0; jb < bcols.size(); ++jb) {
          colind[w] = base + bcols[jb];
          val[w] = bvals[jb];
          ++w;
        }
      }
    }
  }
  return Csr<T>(rows, cols, std::move(rowptr), std::move(colind),
                std::move(val));
}

/// Block-diagonal replication: identity(d) (x) B.  Used by the
/// Graph-Challenge-style generator variant that replicates a topology
/// without cross-connecting the copies.
template <typename T>
Csr<T> kron_identity(index_t d, const Csr<T>& b) {
  return kron(Csr<T>::identity(d), b);
}

}  // namespace radix

// Metrics-surface tests: the registry's Prometheus exposition and JSON
// must render exactly what was set (kind headers, label blocks,
// cumulative histogram buckets); MetricsWindow's deltas must equal the
// hand-computed difference of two snapshots over FakeClock time -- and
// merge exactly across shards; Engine/ShardRouter::export_metrics must
// publish the documented radix_serve_* series.  Sized for TSan
// (`serve` CTest label).
#include "serve/metrics.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "radixnet/graph_challenge.hpp"
#include "serve/engine.hpp"
#include "serve/router.hpp"
#include "support/error.hpp"
#include "support/random.hpp"
#include "support/thread.hpp"

namespace radix::serve {
namespace {

using namespace std::chrono_literals;

std::shared_ptr<infer::SparseDnn> make_dnn(index_t neurons,
                                           std::size_t layers,
                                           std::uint64_t seed) {
  Rng rng(seed);
  const auto net = gc::network(neurons, layers, &rng);
  return std::make_shared<infer::SparseDnn>(net.layers, net.bias, gc::kClamp);
}

bool contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

TEST(MetricsRegistry, RendersCountersAndGaugesExactly) {
  MetricsRegistry reg;
  reg.set_counter("radix_serve_requests_total",
                  {{"class", "interactive"}, {"shard", "0"}}, 42,
                  "Requests completed");
  reg.set_counter("radix_serve_requests_total",
                  {{"class", "batch"}, {"shard", "0"}}, 7);
  reg.set_gauge("radix_serve_queue_depth", {{"class", "interactive"}}, 3);

  const std::string text = reg.render_prometheus();
  EXPECT_TRUE(contains(text, "# HELP radix_serve_requests_total "
                             "Requests completed\n"))
      << text;
  EXPECT_TRUE(contains(text, "# TYPE radix_serve_requests_total counter\n"));
  EXPECT_TRUE(contains(
      text,
      "radix_serve_requests_total{class=\"interactive\",shard=\"0\"} 42\n"));
  EXPECT_TRUE(contains(
      text, "radix_serve_requests_total{class=\"batch\",shard=\"0\"} 7\n"));
  EXPECT_TRUE(contains(text, "# TYPE radix_serve_queue_depth gauge\n"));
  EXPECT_TRUE(
      contains(text, "radix_serve_queue_depth{class=\"interactive\"} 3\n"));

  // Re-setting a series overwrites in place -- one line per scrape.
  reg.set_gauge("radix_serve_queue_depth", {{"class", "interactive"}}, 9);
  const std::string again = reg.render_prometheus();
  EXPECT_TRUE(
      contains(again, "radix_serve_queue_depth{class=\"interactive\"} 9\n"));
  EXPECT_FALSE(contains(again, "} 3\n"));

  const double* v = reg.find("radix_serve_requests_total",
                             {{"class", "batch"}, {"shard", "0"}});
  ASSERT_NE(v, nullptr);
  EXPECT_DOUBLE_EQ(*v, 7.0);
  EXPECT_EQ(reg.find("radix_serve_requests_total", {{"class", "nope"}}),
            nullptr);
}

TEST(MetricsRegistry, OneNameCannotHoldTwoKinds) {
  MetricsRegistry reg;
  reg.set_counter("radix_serve_requests_total", {}, 1);
  EXPECT_THROW(reg.set_gauge("radix_serve_requests_total", {}, 1), Error);
  EXPECT_THROW(reg.set_histogram("radix_serve_requests_total", {},
                                 Log2Histogram(1e-6)),
               Error);
}

TEST(MetricsRegistry, HistogramRendersCumulativeBucketsSumAndCount) {
  Log2Histogram h(1e-6);
  h.record(1.5e-6);  // bucket (1us, 2us]
  h.record(1.8e-6);  // same bucket
  h.record(7e-6);    // bucket (4us, 8us]

  MetricsRegistry reg;
  reg.set_histogram("radix_serve_e2e_latency_seconds", {{"shard", "1"}}, h,
                    "e2e");
  const std::string text = reg.render_prometheus();
  EXPECT_TRUE(
      contains(text, "# TYPE radix_serve_e2e_latency_seconds histogram\n"));
  // Cumulative: 2 at the 2us bound, 3 at the 8us bound, 3 at +Inf.
  EXPECT_TRUE(contains(text,
                       "radix_serve_e2e_latency_seconds_bucket{shard=\"1\","
                       "le=\"2e-06\"} 2\n"))
      << text;
  EXPECT_TRUE(contains(text,
                       "radix_serve_e2e_latency_seconds_bucket{shard=\"1\","
                       "le=\"8e-06\"} 3\n"));
  EXPECT_TRUE(contains(text,
                       "radix_serve_e2e_latency_seconds_bucket{shard=\"1\","
                       "le=\"+Inf\"} 3\n"));
  EXPECT_TRUE(
      contains(text, "radix_serve_e2e_latency_seconds_count{shard=\"1\"} 3\n"));
  EXPECT_TRUE(contains(text, "radix_serve_e2e_latency_seconds_sum{shard=\"1\"} "));

  const std::string json = reg.to_json();
  EXPECT_TRUE(contains(json, "\"name\":\"radix_serve_e2e_latency_seconds\""));
  EXPECT_TRUE(contains(json, "\"kind\":\"histogram\""));
  EXPECT_TRUE(contains(json, "\"labels\":{\"shard\":\"1\"}"));
  EXPECT_TRUE(contains(json, "\"count\":3"));
}

TEST(MetricsRegistry, EscapesLabelValues) {
  MetricsRegistry reg;
  reg.set_gauge("g", {{"name", "a\"b\\c\nd"}}, 1);
  const std::string text = reg.render_prometheus();
  EXPECT_TRUE(contains(text, "g{name=\"a\\\"b\\\\c\\nd\"} 1\n")) << text;
}

TEST(MetricsRegistry, EscapesHelpTextPerExpositionFormat) {
  // HELP has its own escape set in the Prometheus exposition format:
  // backslash -> \\ and newline -> \n, and NOTHING else -- a double
  // quote passes through raw because HELP text is not a quoted string.
  // (The original renderer reused the label-value escaper here, which
  // corrupted any help text containing a quote; this golden pins the
  // fix.)
  MetricsRegistry reg;
  reg.set_counter("radix_demo_total", {}, 1,
                  "path C:\\radix, a \"quoted\" word\nand a second line");
  const std::string text = reg.render_prometheus();
  EXPECT_TRUE(contains(text,
                       "# HELP radix_demo_total path C:\\\\radix, "
                       "a \"quoted\" word\\nand a second line\n"))
      << text;
  // The exposition stays line-oriented: exactly one HELP line, and the
  // raw newline never leaks into the output.
  EXPECT_EQ(text.find("path C:"), text.rfind("path C:"));
  EXPECT_FALSE(contains(text, "word\nand"));

  // JSON keeps the full escape set -- the quote IS escaped there.
  const std::string json = reg.to_json();
  EXPECT_TRUE(contains(json,
                       "\"help\":\"path C:\\\\radix, a \\\"quoted\\\" "
                       "word\\nand a second line\""))
      << json;
}

TEST(MetricsWindow, DeltasMatchHandComputedDifferenceOverFakeTime) {
  FakeClock clock;
  MetricsWindow window(&clock);

  ServeStats t0;
  t0.requests = 100;
  t0.shed = 10;
  t0.expired = 4;
  t0.errors = 14;
  t0.rows = 400;
  t0.batches = 25;
  t0.edges = 1'000'000;
  t0.busy_seconds = 3.0;

  // First tick anchors: zero interval, zero deltas.
  const WindowedRates first = window.tick("k", t0, /*workers=*/2);
  EXPECT_DOUBLE_EQ(first.interval_seconds, 0.0);
  EXPECT_EQ(first.d_requests, 0u);
  EXPECT_DOUBLE_EQ(first.requests_per_second, 0.0);

  ServeStats t1 = t0;
  t1.requests = 250;  // +150 over 2s -> 75 rps
  t1.shed = 30;       // +20 -> 10/s
  t1.expired = 8;     // +4 -> 2/s
  t1.errors = 38;
  t1.rows = 1000;         // +600 -> 300/s
  t1.batches = 75;        // +50
  t1.edges = 5'000'000;   // +4e6 -> 2e6/s
  t1.busy_seconds = 6.0;  // +3 over 2 workers * 2s -> 0.75 busy
  clock.advance(2s);

  const WindowedRates r = window.tick("k", t1, /*workers=*/2);
  EXPECT_DOUBLE_EQ(r.interval_seconds, 2.0);
  EXPECT_EQ(r.d_requests, 150u);
  EXPECT_EQ(r.d_shed, 20u);
  EXPECT_EQ(r.d_expired, 4u);
  EXPECT_EQ(r.d_errors, 24u);
  EXPECT_EQ(r.d_rows, 600u);
  EXPECT_EQ(r.d_batches, 50u);
  EXPECT_EQ(r.d_edges, 4'000'000u);
  EXPECT_DOUBLE_EQ(r.d_busy_seconds, 3.0);
  EXPECT_DOUBLE_EQ(r.requests_per_second, 75.0);
  EXPECT_DOUBLE_EQ(r.shed_per_second, 10.0);
  EXPECT_DOUBLE_EQ(r.expired_per_second, 2.0);
  EXPECT_DOUBLE_EQ(r.rows_per_second, 300.0);
  EXPECT_DOUBLE_EQ(r.edges_per_second, 2'000'000.0);
  EXPECT_DOUBLE_EQ(r.busy_fraction, 0.75);

  // The tick re-anchored: an immediate re-tick with the same snapshot
  // is a zero-width window, rates stay finite (0), deltas zero.
  const WindowedRates z = window.tick("k", t1, 2);
  EXPECT_DOUBLE_EQ(z.interval_seconds, 0.0);
  EXPECT_EQ(z.d_requests, 0u);
  EXPECT_DOUBLE_EQ(z.requests_per_second, 0.0);

  // A backwards counter (collector restart) clamps to zero, not wraps.
  ServeStats t2 = t1;
  t2.requests = 50;
  clock.advance(1s);
  const WindowedRates back = window.tick("k", t2, 2);
  EXPECT_EQ(back.d_requests, 0u);

  // reset() forgets the anchor: the next tick re-anchors.
  window.reset("k");
  clock.advance(1s);
  const WindowedRates fresh = window.tick("k", t2, 2);
  EXPECT_DOUBLE_EQ(fresh.interval_seconds, 0.0);
}

TEST(MetricsWindow, CrossShardMergeOfWindowedDeltasIsExact) {
  // Two shards, one merged fleet view: the merged snapshot's windowed
  // deltas must equal the SUM of the per-shard windowed deltas,
  // exactly, uint64 for uint64 -- what the ISSUE calls the cross-shard
  // merge contract.  Independent keys give each stream its own anchor.
  FakeClock clock;
  MetricsWindow window(&clock);

  ServeStats a0, b0;
  a0.requests = 10;
  a0.shed = 1;
  a0.edges = 1000;
  b0.requests = 20;
  b0.shed = 2;
  b0.edges = 3000;
  ServeStats m0 = a0;
  m0.merge(b0);

  (void)window.tick("a", a0);
  (void)window.tick("b", b0);
  (void)window.tick("merged", m0);

  clock.advance(500ms);
  ServeStats a1 = a0, b1 = b0;
  a1.requests = 45;  // +35
  a1.shed = 6;       // +5
  a1.edges = 4000;   // +3000
  b1.requests = 31;  // +11
  b1.shed = 2;       // +0
  b1.edges = 3700;   // +700
  ServeStats m1 = a1;
  m1.merge(b1);

  const WindowedRates ra = window.tick("a", a1);
  const WindowedRates rb = window.tick("b", b1);
  const WindowedRates rm = window.tick("merged", m1);
  EXPECT_EQ(rm.d_requests, ra.d_requests + rb.d_requests);
  EXPECT_EQ(rm.d_requests, 46u);
  EXPECT_EQ(rm.d_shed, ra.d_shed + rb.d_shed);
  EXPECT_EQ(rm.d_shed, 5u);
  EXPECT_EQ(rm.d_edges, ra.d_edges + rb.d_edges);
  EXPECT_EQ(rm.d_edges, 3700u);
  EXPECT_DOUBLE_EQ(rm.interval_seconds, 0.5);
  EXPECT_DOUBLE_EQ(rm.requests_per_second,
                   ra.requests_per_second + rb.requests_per_second);
  EXPECT_DOUBLE_EQ(rm.requests_per_second, 92.0);
  EXPECT_DOUBLE_EQ(rm.edges_per_second, 7400.0);
}

TEST(EngineMetrics, ExportPublishesTheDocumentedSeries) {
  const auto dnn = make_dnn(1024, 2, 51);
  Engine engine({.workers = 1, .max_delay = 0us, .shard_index = 3});
  const auto id = engine.add_model(dnn, "m",
                                   {.priority = Priority::kInteractive});
  Rng irng(52);
  const auto x = gc::synthetic_input(1, 1024, 0.4, irng);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(engine.submit(InferenceRequest::borrowed(id, x, 1)).get().size(),
              1024u);
  }
  engine.quiesce();

  MetricsRegistry reg;
  engine.export_metrics(reg);
  const MetricLabels inter{{"class", "interactive"}, {"shard", "3"}};
  const double* requests = reg.find("radix_serve_requests_total", inter);
  ASSERT_NE(requests, nullptr);
  EXPECT_DOUBLE_EQ(*requests, 5.0);
  const double* shed = reg.find("radix_serve_shed_total", inter);
  ASSERT_NE(shed, nullptr);
  EXPECT_DOUBLE_EQ(*shed, 0.0);
  const double* depth = reg.find("radix_serve_queue_depth", inter);
  ASSERT_NE(depth, nullptr);
  EXPECT_DOUBLE_EQ(*depth, 0.0) << "quiesced engine has nothing queued";
  EXPECT_EQ(engine.class_pending(Priority::kInteractive), 0u);
  EXPECT_EQ(engine.busy_workers(), 0u);

  // Every documented family renders; the exposition parses as
  // one-metric-per-line text.
  const std::string text = reg.render_prometheus();
  for (const char* family :
       {"radix_serve_requests_total", "radix_serve_shed_total",
        "radix_serve_expired_total", "radix_serve_errors_total",
        "radix_serve_rows_total", "radix_serve_batches_total",
        "radix_serve_edges_total", "radix_serve_busy_seconds_total",
        "radix_serve_queue_depth", "radix_serve_worker_busy_fraction",
        "radix_serve_workers", "radix_serve_e2e_latency_seconds",
        "radix_serve_queue_wait_seconds", "radix_serve_batch_rows"}) {
    EXPECT_TRUE(contains(text, std::string("# TYPE ") + family))
        << "missing family " << family;
  }
  // The e2e histogram saw all five requests.
  EXPECT_TRUE(contains(
      text, "radix_serve_e2e_latency_seconds_count{class=\"interactive\","
            "shard=\"3\"} 5\n"))
      << text;
  const double* workers = reg.find("radix_serve_workers", {{"shard", "3"}});
  ASSERT_NE(workers, nullptr);
  EXPECT_DOUBLE_EQ(*workers, 1.0);
}

TEST(RouterMetrics, MergedFleetViewLabelsShardsAndTracksHealth) {
  const auto dnn = make_dnn(1024, 2, 53);
  ShardRouter router({.shards = 2,
                      .engine = {.workers = 1, .max_delay = 0us}});
  const auto id = router.add_model(dnn, "m");
  Rng irng(54);
  const auto x = gc::synthetic_input(1, 1024, 0.4, irng);
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(router.submit(InferenceRequest::borrowed(id, x, 1)).get().size(),
              1024u);
  }

  MetricsRegistry reg;
  router.export_metrics(reg);
  // Both shards' class series are present, distinguished by label; the
  // fleet total equals the sum (each request served exactly once).
  const double* s0 = reg.find("radix_serve_requests_total",
                              {{"class", "batch"}, {"shard", "0"}});
  const double* s1 = reg.find("radix_serve_requests_total",
                              {{"class", "batch"}, {"shard", "1"}});
  ASSERT_NE(s0, nullptr);
  ASSERT_NE(s1, nullptr);
  EXPECT_DOUBLE_EQ(*s0 + *s1, 6.0);
  const double* h0 = reg.find("radix_serve_shard_health", {{"shard", "0"}});
  const double* h1 = reg.find("radix_serve_shard_health", {{"shard", "1"}});
  ASSERT_NE(h0, nullptr);
  ASSERT_NE(h1, nullptr);
  EXPECT_DOUBLE_EQ(*h0, 0.0);
  EXPECT_DOUBLE_EQ(*h1, 0.0);
  const double* failovers = reg.find("radix_serve_failovers_total", {});
  ASSERT_NE(failovers, nullptr);
  EXPECT_DOUBLE_EQ(*failovers, 0.0);

  // Kill shard 0: its health gauge flips to down (2) and its engine
  // series drop out of the NEXT scrape (fresh registry per scrape).
  router.kill_shard(0);
  MetricsRegistry after;
  router.export_metrics(after);
  const double* h0_after =
      after.find("radix_serve_shard_health", {{"shard", "0"}});
  ASSERT_NE(h0_after, nullptr);
  EXPECT_DOUBLE_EQ(*h0_after, 2.0);
  EXPECT_EQ(after.find("radix_serve_requests_total",
                       {{"class", "batch"}, {"shard", "0"}}),
            nullptr)
      << "a down shard contributes no engine series";
  ASSERT_NE(after.find("radix_serve_requests_total",
                       {{"class", "batch"}, {"shard", "1"}}),
            nullptr);
  router.shutdown();
}

}  // namespace
}  // namespace radix::serve

// E5 -- eq. (5) ablation: "the sparsity of G is negligibly affected by
// {D_i}" when the radix variance is small.
//
// We hold the radix systems fixed and sweep increasingly lopsided D
// vectors, reporting exact density (eq. (4)) against the D-free
// approximation mu/N' (eq. (5)).  With uniform radices the D-dependence
// cancels exactly; with mixed radices it stays within the radix spread.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "radixnet/analytics.hpp"
#include "radixnet/spec.hpp"
#include "support/table.hpp"

using namespace radix;

namespace {

std::string d_to_string(const std::vector<std::uint32_t>& d) {
  std::string s = "(";
  for (std::size_t i = 0; i < d.size(); ++i) {
    if (i) s += ",";
    s += std::to_string(d[i]);
  }
  return s + ")";
}

}  // namespace

int main() {
  std::printf("== E5: eq.(5) ablation -- density vs dense widths D ==\n\n");

  // Mix of flat, palindromic, and skewed D vectors -- the skewed ones
  // matter: with alternating radices, palindromic D cancels exactly in
  // eq. (4) and would overstate how good eq. (5) is.
  const std::vector<std::vector<std::uint32_t>> d_sweeps = {
      {1, 1, 1, 1, 1},  {2, 2, 2, 2, 2},  {1, 4, 1, 4, 1},
      {8, 1, 1, 1, 8},  {1, 2, 16, 2, 1}, {16, 16, 16, 16, 16},
      {8, 1, 1, 1, 1},  {1, 1, 1, 8, 8},  {1, 16, 2, 1, 4}};

  // Case 1: uniform radices (variance 0) -- eq. (5) must be exact.
  std::printf("uniform radices (4,4) x2, N' = 16, mu = 4, "
              "mu/N' = %.6f:\n\n", 4.0 / 16.0);
  Table t1({"D", "exact eq.(4)", "mu/N' eq.(5)", "rel err"});
  double max_err_uniform = 0.0;
  for (const auto& d : d_sweeps) {
    const RadixNetSpec spec({MixedRadix({4, 4}), MixedRadix({4, 4})}, d);
    const double exact = exact_density(spec);
    const double approx = approx_density_mu(spec);
    const double rel = std::fabs(exact - approx) / exact;
    max_err_uniform = std::max(max_err_uniform, rel);
    t1.add_row({d_to_string(d), Table::fmt_sci(exact, 4),
                Table::fmt_sci(approx, 4), Table::fmt_sci(rel, 2)});
  }
  t1.print(std::cout);

  // Case 2: mixed radices (2, 8): variance kicks in, D now matters, but
  // the density stays within [min radix, max radix] / N'.
  std::printf("\nmixed radices (2,8) x2, N' = 16, mu = 5:\n\n");
  Table t2({"D", "exact eq.(4)", "mu/N' eq.(5)", "ratio exact/approx"});
  double worst_ratio = 1.0;
  for (const auto& d : d_sweeps) {
    const RadixNetSpec spec({MixedRadix({2, 8}), MixedRadix({2, 8})}, d);
    const double exact = exact_density(spec);
    const double approx = approx_density_mu(spec);
    const double ratio = exact / approx;
    worst_ratio = std::max(worst_ratio,
                           std::max(ratio, 1.0 / ratio));
    t2.add_row({d_to_string(d), Table::fmt_sci(exact, 4),
                Table::fmt_sci(approx, 4), Table::fmt(ratio, 4)});
  }
  t2.print(std::cout);

  std::printf("\nuniform-radix max rel err: %.3e (paper: exactly 0)\n",
              max_err_uniform);
  // The D-weighted mean radix lies in [min radix, max radix], so the
  // exact/approx ratio (either way up) is bounded by
  // max(max_radix/mu, mu/min_radix).
  const double bound = std::max(8.0 / 5.0, 5.0 / 2.0);
  std::printf("mixed-radix worst exact/approx ratio: %.3f (bound "
              "max(max_radix/mu, mu/min_radix) = %.3f)\n",
              worst_ratio, bound);
  const bool ok = max_err_uniform < 1e-12 && worst_ratio < bound + 1e-9;
  std::printf("\npaper expectation: D does not affect density at zero "
              "radix variance: %s\n",
              ok ? "REPRODUCED" : "MISMATCH");
  return ok ? 0 : 1;
}

// Trained-parameter serialization.
//
// A Network's architecture is reconstructed from code (topology specs
// are serialized separately via radixnet/serialize.hpp); this module
// persists only the trainable parameter arrays, in layer order, with a
// size manifest so mismatched architectures fail loudly instead of
// silently mis-assigning weights.
//
// Format: text header "radixnet-params v1 <count>" followed by one line
// per parameter array: "<size> <hex float values...>" -- floats are
// stored as raw bit patterns so the round trip is exact.
#pragma once

#include <string>

#include "nn/network.hpp"

namespace radix::nn {

/// Save all trainable parameters of `net` to `path`.
void save_params(const std::string& path, Network& net);

/// Load parameters saved by save_params into an identically structured
/// network; throws IoError on format errors and SpecError when the
/// parameter count or any array size differs.
void load_params(const std::string& path, Network& net);

}  // namespace radix::nn

// Structured-sparse convolutional classifier on the glyph dataset --
// the X-Conv view: a convolution is just another structured sparse
// matrix, so the same SparseLinear layer trains it.
//
//   $ ./conv_glyphs [--epochs N] [--kernel K]
//
// Architecture: conv2d pattern (16x16 -> 14x14, KxK) as a SparseLinear,
// ReLU, a RadiX-Net sparse block at width 196, dense head to 10 classes.
// Compares against a dense MLP of the same widths.
#include <cstdio>
#include <iostream>
#include <memory>
#include <utility>

#include "nn/metrics.hpp"
#include "nn/loss.hpp"
#include "nn/trainer.hpp"
#include "radixnet/builder.hpp"
#include "support/args.hpp"
#include "support/table.hpp"
#include "xnet/xconv.hpp"

int main(int argc, char** argv) {
  using namespace radix;
  using nn::Activation;

  Args args;
  args.add_flag("epochs", "8", "training epochs");
  args.add_flag("kernel", "3", "conv kernel size");
  try {
    args.parse(argc, argv);
  } catch (const Error& e) {
    std::fprintf(stderr, "%s\n%s", e.what(),
                 args.usage("conv_glyphs").c_str());
    return 2;
  }
  const index_t epochs = static_cast<index_t>(args.get_int("epochs"));
  const index_t kernel = static_cast<index_t>(args.get_int("kernel"));

  Rng rng(1);
  const auto data = nn::datasets::glyphs(2000, rng);
  auto split = nn::split_dataset(data, 0.2, rng);

  // Conv front: 16x16 grid -> (16-k+1)^2 with a k x k kernel.
  const auto conv = conv2d_pattern(16, 16, kernel, kernel);
  const index_t conv_out = conv.cols();
  std::printf("conv pattern: 256 -> %u, %zu weights (dense equivalent "
              "%u)\n",
              conv_out, conv.nnz(), 256u * conv_out);

  // RadiX block at the conv output width needs a factorization; fall back
  // to a dense mid layer when the width is awkward (e.g. prime).
  nn::Network net;
  Rng init(11);
  net.add(std::make_unique<nn::SparseLinear>(conv, init));
  net.add(std::make_unique<nn::ActivationLayer>(Activation::kRelu,
                                                conv_out));
  net.add(std::make_unique<nn::DenseLinear>(conv_out, 64, init));
  net.add(std::make_unique<nn::ActivationLayer>(Activation::kRelu, 64));
  const auto radix_block = build_extended_mixed_radix(
      RadixNetSpec::extended({MixedRadix({8, 8})}));
  for (std::size_t i = 0; i < radix_block.depth(); ++i) {
    net.add(std::make_unique<nn::SparseLinear>(radix_block.layer(i), init));
    net.add(std::make_unique<nn::ActivationLayer>(Activation::kRelu, 64));
  }
  net.add(std::make_unique<nn::DenseLinear>(64, 10, init));

  Rng init_d(11);
  nn::Network dense;
  dense.add(std::make_unique<nn::DenseLinear>(256, conv_out, init_d));
  dense.add(std::make_unique<nn::ActivationLayer>(Activation::kRelu,
                                                  conv_out));
  dense.add(std::make_unique<nn::DenseLinear>(conv_out, 64, init_d));
  dense.add(std::make_unique<nn::ActivationLayer>(Activation::kRelu, 64));
  dense.add(std::make_unique<nn::DenseLinear>(64, 64, init_d));
  dense.add(std::make_unique<nn::ActivationLayer>(Activation::kRelu, 64));
  dense.add(std::make_unique<nn::DenseLinear>(64, 64, init_d));
  dense.add(std::make_unique<nn::ActivationLayer>(Activation::kRelu, 64));
  dense.add(std::make_unique<nn::DenseLinear>(64, 10, init_d));

  nn::TrainConfig cfg;
  cfg.epochs = epochs;

  Table t({"model", "weights", "test acc", "macro F1", "s"});
  const std::pair<const char*, nn::Network*> models[] = {
      {"conv+radix", &net}, {"dense", &dense}};
  for (const auto& [name, model] : models) {
    nn::Adam opt(0.005f);
    const auto result = nn::train_classifier(*model, opt, split, cfg);
    nn::Tensor logits = model->forward(split.test.x);
    const auto preds = nn::argmax_rows(logits);
    const auto metrics =
        nn::per_class_metrics(preds, split.test.labels, 10);
    t.add_row({name, std::to_string(model->num_weights()),
               Table::fmt(result.final_test_accuracy, 4),
               Table::fmt(metrics.macro_f1, 4),
               Table::fmt(result.wall_seconds, 1)});
  }
  t.print(std::cout);
  return 0;
}

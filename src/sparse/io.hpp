// Plain-text serialization of sparse matrices and layer stacks.
//
// Format: Graph-Challenge-style TSV triples, one entry per line,
// 1-based indices:
//     row <tab> col <tab> value
// A leading header line "%%shape rows cols" pins the matrix shape so that
// trailing empty rows/columns round-trip.  Layer stacks are written one
// file per layer plus an index file listing widths.
#pragma once

#include <string>
#include <vector>

#include "sparse/csr.hpp"

namespace radix {

/// Write a float CSR matrix as TSV triples.
void write_tsv(const std::string& path, const Csr<float>& m);

/// Write a pattern CSR matrix as TSV triples (value column = 1).
void write_tsv(const std::string& path, const Csr<pattern_t>& m);

/// Read a float CSR matrix written by write_tsv; throws IoError on parse
/// failure.
Csr<float> read_tsv_f32(const std::string& path);

/// Read as a pure connectivity pattern (values ignored).
Csr<pattern_t> read_tsv_pattern(const std::string& path);

/// Serialize a stack of pattern layers to `<prefix>-layerK.tsv` plus a
/// `<prefix>-meta.txt` listing layer count and shapes.
void write_layer_stack(const std::string& prefix,
                       const std::vector<Csr<pattern_t>>& layers);

/// Read back a stack written by write_layer_stack.
std::vector<Csr<pattern_t>> read_layer_stack(const std::string& prefix);

}  // namespace radix

#include "xnet/random_regular.hpp"

#include <algorithm>

#include "sparse/coo.hpp"
#include "support/error.hpp"

namespace radix {

Csr<pattern_t> random_regular_square(index_t n, index_t k, Rng& rng) {
  RADIX_REQUIRE(n > 0 && k > 0 && k <= n,
                "random_regular_square: need 0 < k <= n");
  // Union of k pairwise-disjoint random permutations.  Rejection
  // sampling of whole permutations has acceptance ~e^-j for the j-th
  // round, so instead each round draws one random permutation and
  // repairs conflicts (rows whose target is already used) by random
  // transpositions -- each swap succeeds with probability ~(1 - k/n)^2,
  // so the repair loop is fast for any k < n.
  std::vector<std::vector<index_t>> targets(n);
  auto conflicted = [&](index_t r, index_t c) {
    return std::find(targets[r].begin(), targets[r].end(), c) !=
           targets[r].end();
  };
  for (index_t j = 0; j < k; ++j) {
    auto perm = rng.permutation(n);
    std::uint64_t budget =
        static_cast<std::uint64_t>(n) * 1000 + 100000;
    for (index_t r = 0; r < n;) {
      if (!conflicted(r, perm[r])) {
        ++r;
        continue;
      }
      RADIX_REQUIRE(budget-- > 0,
                    "random_regular_square: repair budget exhausted "
                    "(k too close to n?)");
      const index_t s = static_cast<index_t>(rng.uniform(n));
      if (s == r) continue;
      if (!conflicted(r, perm[s]) && !conflicted(s, perm[r])) {
        std::swap(perm[r], perm[s]);
        // A swap can re-conflict an earlier row only at position s;
        // restart scanning from min(r, s) to stay correct.
        r = std::min(r, s);
      }
    }
    for (index_t r = 0; r < n; ++r) targets[r].push_back(perm[r]);
  }
  Coo<pattern_t> coo(n, n);
  coo.reserve(static_cast<std::size_t>(n) * k);
  for (index_t r = 0; r < n; ++r) {
    for (index_t c : targets[r]) coo.push(r, c, 1);
  }
  return Csr<pattern_t>::from_coo(coo);
}

Csr<pattern_t> random_regular_bipartite(index_t m, index_t n, index_t k,
                                        Rng& rng) {
  RADIX_REQUIRE(m > 0 && n > 0 && k > 0 && k <= m,
                "random_regular_bipartite: need 0 < k <= m");
  // Each column draws k distinct sources (partial Fisher-Yates).
  std::vector<std::vector<index_t>> col_sources(n);
  std::vector<index_t> pool(m);
  for (index_t i = 0; i < m; ++i) pool[i] = i;
  std::vector<index_t> out_degree(m, 0);
  for (index_t c = 0; c < n; ++c) {
    for (index_t j = 0; j < k; ++j) {
      const index_t pick =
          j + static_cast<index_t>(rng.uniform(m - j));
      std::swap(pool[j], pool[pick]);
    }
    col_sources[c].assign(pool.begin(), pool.begin() + k);
    for (index_t r : col_sources[c]) ++out_degree[r];
  }
  // Repair zero-out-degree rows: replace, in some column, a source whose
  // out-degree exceeds 1 with the orphan row.
  for (index_t r = 0; r < m; ++r) {
    if (out_degree[r] != 0) continue;
    bool repaired = false;
    for (index_t c = 0; c < n && !repaired; ++c) {
      for (index_t& s : col_sources[c]) {
        if (out_degree[s] > 1 &&
            std::find(col_sources[c].begin(), col_sources[c].end(), r) ==
                col_sources[c].end()) {
          --out_degree[s];
          s = r;
          ++out_degree[r];
          repaired = true;
          break;
        }
      }
    }
    RADIX_REQUIRE(repaired,
                  "random_regular_bipartite: cannot repair zero row "
                  "(n*k < m?)");
  }
  Coo<pattern_t> coo(m, n);
  coo.reserve(static_cast<std::size_t>(n) * k);
  for (index_t c = 0; c < n; ++c) {
    for (index_t r : col_sources[c]) coo.push(r, c, 1);
  }
  return Csr<pattern_t>::from_coo(coo);
}

Fnnt random_xnet(const std::vector<index_t>& widths, index_t k, Rng& rng) {
  RADIX_REQUIRE(widths.size() >= 2,
                "random_xnet: need at least two node layers");
  std::vector<Csr<pattern_t>> layers;
  layers.reserve(widths.size() - 1);
  for (std::size_t i = 0; i + 1 < widths.size(); ++i) {
    if (widths[i] == widths[i + 1]) {
      layers.push_back(random_regular_square(widths[i], k, rng));
    } else {
      layers.push_back(random_regular_bipartite(
          widths[i], widths[i + 1], std::min<index_t>(k, widths[i]), rng));
    }
  }
  return Fnnt(std::move(layers));
}

}  // namespace radix

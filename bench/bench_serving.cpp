// Serving-engine benchmark: does dynamic micro-batching recover the
// paper's batch-benchmark edges/second from small asynchronous
// requests?
//
// Google Benchmark harness, three views over one RadiX-Net challenge
// preset (1024 neurons x 12 layers unless swept):
//
//   BM_ServeDirect      -- the in-harness upper bound: one thread
//       calling the fused SparseDnn::forward directly at the serving
//       batch size (no queueing, no coalescing, no copies).  Matches
//       bench_inference_scaling's BM_InferFused shape.
//   BM_ServeClosedLoop  -- offered-load sweep: N closed-loop client
//       threads (->Threads), each submitting `rows_per_req`-row
//       requests through one Engine (one worker) and blocking on the
//       future.  At saturating load the micro-batcher coalesces
//       requests up to the 32-row budget, and edges/second should
//       approach BM_ServeDirect (acceptance: >= 0.7x).
//   BM_ServeLatencyVsDelay -- the batching knob's latency cost: a
//       single closed-loop client against max_delay in {0, 200, 2000}
//       microseconds; per-iteration time IS the end-to-end request
//       latency, and the engine's p95 e2e / mean batch rows are
//       reported as counters.
//
// plus the PR-4 mixed-priority QoS sweep (one engine, an interactive-
// class and a batch-class model with per-class max_delay/max_batch_rows
// overrides):
//
//   BM_ServeInteractiveSolo -- the interactive client alone: its
//       solo-load e2e p99 is the yardstick.
//   BM_ServeBatchOnly       -- batch-class clients only: the single-
//       class serving throughput the mixed aggregate is graded against.
//   BM_ServeMixedQoS        -- thread 0 is the interactive client, all
//       other threads are closed-loop batch clients saturating the
//       worker.  QoS acceptance (recorded in BENCH_pr4.json): the
//       interactive class's p99 stays within ~2x its solo p99 while
//       aggregate edges/s stays >= 0.9x BM_ServeBatchOnly.
//
// and the PR-5 sharded-scaling sweep over the unified Backend API:
//
//   BM_ServeSharded -- N closed-loop clients against a ShardRouter of
//       {1, 2, 4} single-worker engine shards (power-of-two-choices
//       routing).  Aggregate edges/s versus the shard count is the
//       scaling curve recorded in BENCH_pr5.json.  NOTE the limiter on
//       a small host: every shard worker is CPU-bound in the fused
//       forward, so aggregate throughput scales with shards only while
//       free cores remain.  On a 1-core host the curve is flat-to-
//       slightly-negative (shards add scheduling concurrency but no
//       compute) -- that is the expected shape, not a router defect;
//       on an M-core host expect growth up to about min(shards, M-ish).
//
// All submissions go through the single Backend::submit entry point
// (serve/request.hpp).  items_per_second is the challenge metric
// (edges/s = rows x total nnz per wall second);
// scripts/check_perf_smoke.py sanity-checks this bench's output shape
// in CI.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "infer/sparse_dnn.hpp"
#include "net/remote_backend.hpp"
#include "net/server.hpp"
#include "radixnet/graph_challenge.hpp"
#include "serve/engine.hpp"
#include "serve/router.hpp"
#include "support/random.hpp"

namespace radix {
namespace {

constexpr index_t kNeurons = 1024;
constexpr std::size_t kLayers = 12;
constexpr index_t kMaxBatchRows = 32;
constexpr double kInputDensity = 0.4;

const gc::Network& cached_network() {
  static const gc::Network net = [] {
    Rng rng(99);
    return gc::network(kNeurons, kLayers, &rng);
  }();
  return net;
}

std::shared_ptr<infer::SparseDnn> make_dnn() {
  const auto& net = cached_network();
  return std::make_shared<infer::SparseDnn>(net.layers, net.bias, gc::kClamp);
}

const std::vector<float>& cached_input(index_t rows) {
  static std::map<index_t, std::vector<float>> cache;
  auto it = cache.find(rows);
  if (it == cache.end()) {
    Rng rng(7);
    it = cache
             .emplace(rows, gc::synthetic_input(rows, kNeurons,
                                                kInputDensity, rng))
             .first;
  }
  return it->second;
}

// One engine per benchmark run, built in Setup (single-threaded) so the
// threaded benchmark body only submits.
std::unique_ptr<serve::Engine> g_engine;
serve::ModelId g_model = 0;

void SetupEngine(const benchmark::State& state) {
  serve::EngineOptions opts;
  opts.workers = 1;  // measure batching efficiency, not core count
  opts.max_batch_rows = kMaxBatchRows;
  opts.max_delay = std::chrono::microseconds(state.range(1));
  opts.queue_capacity = 4096;
  g_engine = std::make_unique<serve::Engine>(opts);
  g_model = g_engine->add_model(make_dnn(), "bench");
  (void)cached_input(static_cast<index_t>(state.range(0)));
}

void TeardownEngine(const benchmark::State&) {
  g_engine->shutdown();
  g_engine.reset();
}

// Tracing-overhead twin: the same engine with a Tracer attached, so
// BM_ServeClosedLoopTraced / BM_ServeClosedLoop measures what the
// always-on event stream costs the hot path (check_perf_smoke.py gates
// the ratio at >= 0.95).
std::unique_ptr<serve::Tracer> g_tracer;

void SetupTracedEngine(const benchmark::State& state) {
  serve::EngineOptions opts;
  opts.workers = 1;
  opts.max_batch_rows = kMaxBatchRows;
  opts.max_delay = std::chrono::microseconds(state.range(1));
  opts.queue_capacity = 4096;
  g_tracer = std::make_unique<serve::Tracer>();
  opts.tracer = g_tracer.get();
  g_engine = std::make_unique<serve::Engine>(opts);
  g_model = g_engine->add_model(make_dnn(), "bench");
  (void)cached_input(static_cast<index_t>(state.range(0)));
}

void TeardownTracedEngine(const benchmark::State&) {
  g_engine->shutdown();
  g_engine.reset();
  g_tracer.reset();
}

// Direct fused path at the serving batch size: the throughput ceiling
// the engine is graded against.
void BM_ServeDirect(benchmark::State& state) {
  const index_t batch = static_cast<index_t>(state.range(0));
  const auto dnn = make_dnn();
  const auto& x = cached_input(batch);
  infer::InferenceWorkspace ws;
  dnn->prewarm({.max_batch = batch, .workspace = &ws});
  for (auto _ : state) {
    auto y = dnn->forward(x.data(), batch, ws);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          batch * static_cast<std::int64_t>(dnn->total_nnz()));
}

// Args: {rows_per_request, max_delay_us}; ->Threads(N) is the offered
// load (N closed-loop clients, one outstanding request each).
void BM_ServeClosedLoop(benchmark::State& state) {
  const index_t rows = static_cast<index_t>(state.range(0));
  const auto& x = cached_input(rows);
  const std::uint64_t nnz = g_engine->model(g_model).total_nnz();

  for (auto _ : state) {
    auto fut = g_engine
                   ->submit(serve::InferenceRequest::borrowed(g_model, x, rows))
                   .take_future();
    benchmark::DoNotOptimize(fut.get().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          rows * static_cast<std::int64_t>(nnz));

  if (state.thread_index() == 0) {
    const auto s = g_engine->stats(g_model);
    state.counters["mean_batch_rows"] =
        benchmark::Counter(s.mean_batch_rows);
    state.counters["queue_p95_us"] =
        benchmark::Counter(s.queue_wait_p95 * 1e6);
    state.counters["e2e_p95_us"] = benchmark::Counter(s.e2e_p95 * 1e6);
  }
}

// Identical body to BM_ServeClosedLoop; only the Setup differs (tracer
// attached).  Kept as a separate family so baseline tooling can pair
// the two by name and compute the tracing-overhead ratio.
void BM_ServeClosedLoopTraced(benchmark::State& state) {
  const index_t rows = static_cast<index_t>(state.range(0));
  const auto& x = cached_input(rows);
  const std::uint64_t nnz = g_engine->model(g_model).total_nnz();

  for (auto _ : state) {
    auto fut = g_engine
                   ->submit(serve::InferenceRequest::borrowed(g_model, x, rows))
                   .take_future();
    benchmark::DoNotOptimize(fut.get().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          rows * static_cast<std::int64_t>(nnz));

  if (state.thread_index() == 0) {
    const auto s = g_engine->stats(g_model);
    state.counters["mean_batch_rows"] =
        benchmark::Counter(s.mean_batch_rows);
    state.counters["queue_p95_us"] =
        benchmark::Counter(s.queue_wait_p95 * 1e6);
    state.counters["e2e_p95_us"] = benchmark::Counter(s.e2e_p95 * 1e6);
    state.counters["trace_events"] =
        benchmark::Counter(static_cast<double>(g_tracer->recorded()));
  }
}

// Args: {rows_per_request, max_delay_us}, always one client: the
// per-iteration wall time is the end-to-end latency a lone request pays
// for the coalescing window.
void BM_ServeLatencyVsDelay(benchmark::State& state) {
  const index_t rows = static_cast<index_t>(state.range(0));
  const auto& x = cached_input(rows);
  for (auto _ : state) {
    auto fut = g_engine
                   ->submit(serve::InferenceRequest::borrowed(g_model, x, rows))
                   .take_future();
    benchmark::DoNotOptimize(fut.get().data());
  }
  const auto s = g_engine->stats(g_model);
  state.counters["mean_batch_rows"] = benchmark::Counter(s.mean_batch_rows);
  state.counters["e2e_p95_us"] = benchmark::Counter(s.e2e_p95 * 1e6);
}

// --- Mixed-priority QoS sweep -------------------------------------------

// Both QoS classes run 4-row requests against an 8-row budget: the
// batch class keeps a generous coalescing window while the interactive
// class's small window and budget bound how long a worker can be
// head-of-line blocked in front of it.
constexpr index_t kQosRows = 4;
constexpr index_t kQosBudget = 8;

std::unique_ptr<serve::Engine> g_qos_engine;
serve::ModelId g_qos_inter = 0;
serve::ModelId g_qos_batch = 0;

void SetupQosEngine(const benchmark::State&) {
  serve::EngineOptions opts;
  opts.workers = 1;  // measure scheduling policy, not core count
  opts.max_batch_rows = kQosBudget;
  opts.max_delay = std::chrono::microseconds(200);
  opts.queue_capacity = 4096;
  opts.class_policy[static_cast<std::size_t>(
      serve::Priority::kInteractive)] = {
      .max_delay = std::chrono::microseconds(50),
      .max_batch_rows = kQosBudget};
  g_qos_engine = std::make_unique<serve::Engine>(opts);
  g_qos_inter = g_qos_engine->add_model(
      make_dnn(), "interactive",
      {.priority = serve::Priority::kInteractive, .weight = 4});
  g_qos_batch = g_qos_engine->add_model(
      make_dnn(), "batch", {.priority = serve::Priority::kBatch});
  (void)cached_input(kQosRows);
}

void TeardownQosEngine(const benchmark::State&) {
  g_qos_engine->shutdown();
  g_qos_engine.reset();
}

void RunQosClient(benchmark::State& state, serve::ModelId id) {
  const auto& x = cached_input(kQosRows);
  const std::uint64_t nnz = g_qos_engine->model(id).total_nnz();
  for (auto _ : state) {
    auto fut = g_qos_engine
                   ->submit(serve::InferenceRequest::borrowed(id, x, kQosRows))
                   .take_future();
    benchmark::DoNotOptimize(fut.get().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kQosRows * static_cast<std::int64_t>(nnz));
}

// The interactive client alone: its e2e p99 under solo load is the
// yardstick the mixed-load p99 is compared against.
void BM_ServeInteractiveSolo(benchmark::State& state) {
  RunQosClient(state, g_qos_inter);
  const auto s = g_qos_engine->class_stats(serve::Priority::kInteractive);
  state.counters["interactive_p99_us"] = benchmark::Counter(s.e2e_p99 * 1e6);
  state.counters["interactive_p50_us"] = benchmark::Counter(s.e2e_p50 * 1e6);
}

// Batch-class clients only: the single-class serving throughput.
void BM_ServeBatchOnly(benchmark::State& state) {
  RunQosClient(state, g_qos_batch);
  if (state.thread_index() == 0) {
    const auto s = g_qos_engine->class_stats(serve::Priority::kBatch);
    state.counters["batch_p99_us"] = benchmark::Counter(s.e2e_p99 * 1e6);
    state.counters["batch_mean_rows"] = benchmark::Counter(s.mean_batch_rows);
  }
}

// Thread 0 is the interactive client; every other thread saturates the
// worker with batch-class traffic.
void BM_ServeMixedQoS(benchmark::State& state) {
  const bool interactive = state.thread_index() == 0;
  RunQosClient(state, interactive ? g_qos_inter : g_qos_batch);
  if (interactive) {
    const auto si =
        g_qos_engine->class_stats(serve::Priority::kInteractive);
    const auto sb = g_qos_engine->class_stats(serve::Priority::kBatch);
    state.counters["interactive_p99_us"] =
        benchmark::Counter(si.e2e_p99 * 1e6);
    state.counters["interactive_p50_us"] =
        benchmark::Counter(si.e2e_p50 * 1e6);
    state.counters["batch_p99_us"] = benchmark::Counter(sb.e2e_p99 * 1e6);
    state.counters["batch_mean_rows"] =
        benchmark::Counter(sb.mean_batch_rows);
  }
}

BENCHMARK(BM_ServeDirect)
    ->Args({kMaxBatchRows, 0})
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_ServeClosedLoop)
    ->Args({1, 200})
    ->Setup(SetupEngine)
    ->Teardown(TeardownEngine)
    ->Threads(1)
    ->Threads(4)
    ->Threads(16)
    ->Threads(32)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->MeasureProcessCPUTime();

BENCHMARK(BM_ServeClosedLoopTraced)
    ->Args({1, 200})
    ->Setup(SetupTracedEngine)
    ->Teardown(TeardownTracedEngine)
    ->Threads(1)
    ->Threads(4)
    ->Threads(16)
    ->Threads(32)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->MeasureProcessCPUTime();

BENCHMARK(BM_ServeLatencyVsDelay)
    ->Args({1, 0})
    ->Args({1, 200})
    ->Args({1, 2000})
    ->Setup(SetupEngine)
    ->Teardown(TeardownEngine)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

BENCHMARK(BM_ServeInteractiveSolo)
    ->Setup(SetupQosEngine)
    ->Teardown(TeardownQosEngine)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

BENCHMARK(BM_ServeBatchOnly)
    ->Setup(SetupQosEngine)
    ->Teardown(TeardownQosEngine)
    ->Threads(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->MeasureProcessCPUTime();

BENCHMARK(BM_ServeMixedQoS)
    ->Setup(SetupQosEngine)
    ->Teardown(TeardownQosEngine)
    ->Threads(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->MeasureProcessCPUTime();

// --- Sharded-scaling sweep ----------------------------------------------

// Requests are kShardedRows rows so the router (not request size)
// dominates scheduling; each shard keeps the standard 32-row budget.
constexpr index_t kShardedRows = 4;

std::unique_ptr<serve::ShardRouter> g_router;
serve::ModelId g_router_model = 0;

// Arg: {shards}.  One worker per shard: the sweep varies shard count,
// not total thread budget knobs.
void SetupRouter(const benchmark::State& state) {
  serve::ShardRouterOptions opts;
  opts.shards = static_cast<std::size_t>(state.range(0));
  opts.engine.workers = 1;
  opts.engine.max_batch_rows = kMaxBatchRows;
  opts.engine.max_delay = std::chrono::microseconds(200);
  opts.engine.queue_capacity = 4096;
  g_router = std::make_unique<serve::ShardRouter>(opts);
  g_router_model = g_router->add_model(make_dnn(), "sharded");
  (void)cached_input(kShardedRows);
}

void TeardownRouter(const benchmark::State&) {
  g_router->shutdown();
  g_router.reset();
}

// ->Threads(N) closed-loop clients saturate the router; aggregate
// edges/s versus state.range(0) = shard count is the scaling curve.
void BM_ServeSharded(benchmark::State& state) {
  const auto& x = cached_input(kShardedRows);
  const std::uint64_t nnz =
      g_router->shard(0).model(g_router_model).total_nnz();
  for (auto _ : state) {
    auto fut = g_router
                   ->submit(serve::InferenceRequest::borrowed(
                       g_router_model, x, kShardedRows))
                   .take_future();
    benchmark::DoNotOptimize(fut.get().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kShardedRows * static_cast<std::int64_t>(nnz));

  if (state.thread_index() == 0) {
    const auto merged = g_router->stats(g_router_model);
    state.counters["mean_batch_rows"] =
        benchmark::Counter(merged.mean_batch_rows);
    state.counters["e2e_p95_us"] = benchmark::Counter(merged.e2e_p95 * 1e6);
    // Load-spread check: the busiest shard's share of requests (1.0
    // means the router funneled everything to one shard).  Numerator
    // and denominator come from ONE read pass over the shards -- other
    // client threads are still completing requests here, and mixing
    // these reads with the merged snapshot above could report > 1.
    std::uint64_t busiest = 0, total = 0;
    for (std::size_t i = 0; i < g_router->num_shards(); ++i) {
      const std::uint64_t r = g_router->shard(i).stats(g_router_model).requests;
      busiest = std::max(busiest, r);
      total += r;
    }
    state.counters["busiest_shard_share"] = benchmark::Counter(
        total == 0 ? 0.0
                   : static_cast<double>(busiest) / static_cast<double>(total));
  }
}

BENCHMARK(BM_ServeSharded)
    ->Args({1})
    ->Args({2})
    ->Args({4})
    ->Setup(SetupRouter)
    ->Teardown(TeardownRouter)
    ->Threads(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->MeasureProcessCPUTime();

// --- Networked front-end sweep (PR 9) ------------------------------------

// BM_ServeClosedLoop's twin THROUGH the socket: the same engine behind
// an in-process net::Server, driven by closed-loop clients sharing one
// net::RemoteBackend over loopback.  The ratio
// BM_ServeRemoteClosedLoop / BM_ServeClosedLoop at matching thread
// counts is the wire tax -- framing, one syscall round-trip each way,
// and the single-connection demux -- which scripts/check_perf_smoke.py
// gates at >= 0.5x for 32 clients.
std::unique_ptr<net::Server> g_net_server;
std::unique_ptr<net::RemoteBackend> g_remote;

void SetupRemoteEngine(const benchmark::State& state) {
  SetupEngine(state);
  net::ServerOptions opts;
  opts.submit_workers = 2;
  opts.hooks = net::make_admin_hooks(*g_engine);
  g_net_server = std::make_unique<net::Server>(*g_engine, opts);
  g_remote = std::make_unique<net::RemoteBackend>(g_net_server->port());
}

void TeardownRemoteEngine(const benchmark::State& state) {
  g_remote->shutdown();
  g_remote.reset();
  g_net_server->stop();
  g_net_server.reset();
  TeardownEngine(state);
}

// Args: {rows_per_request, max_delay_us}; ->Threads(N) closed-loop
// remote clients, one outstanding request each, all multiplexed on one
// TCP connection.
void BM_ServeRemoteClosedLoop(benchmark::State& state) {
  const index_t rows = static_cast<index_t>(state.range(0));
  const auto& x = cached_input(rows);
  const std::uint64_t nnz = g_engine->model(g_model).total_nnz();

  for (auto _ : state) {
    auto fut = g_remote
                   ->submit(serve::InferenceRequest::borrowed(g_model, x, rows))
                   .take_future();
    benchmark::DoNotOptimize(fut.get().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          rows * static_cast<std::int64_t>(nnz));

  if (state.thread_index() == 0) {
    // Stats fetched OVER THE WIRE: the bench doubles as a smoke test of
    // the remote stats path under concurrent submit traffic.
    const auto s = g_remote->stats(g_model);
    state.counters["mean_batch_rows"] =
        benchmark::Counter(s.mean_batch_rows);
    state.counters["queue_p95_us"] =
        benchmark::Counter(s.queue_wait_p95 * 1e6);
    state.counters["e2e_p95_us"] = benchmark::Counter(s.e2e_p95 * 1e6);
  }
}

BENCHMARK(BM_ServeRemoteClosedLoop)
    ->Args({1, 200})
    ->Setup(SetupRemoteEngine)
    ->Teardown(TeardownRemoteEngine)
    ->Threads(1)
    ->Threads(4)
    ->Threads(16)
    ->Threads(32)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->MeasureProcessCPUTime();

// --- Failover sweep (PR 6 live operations) ------------------------------

// The cost of shard churn in the serving path: closed-loop clients keep
// the fleet saturated while thread 0 doubles as the chaos actor,
// periodically killing one shard (orphans fail over to its siblings)
// and restarting it (fresh engine, registry replayed).  Throughput is
// the aggregate edges/s the fleet sustains THROUGH the churn; the
// `failovers` counter reports how many queued requests the kills
// actually moved (low on an unloaded fleet: killing an idle shard
// orphans nothing).  Arg: {shards}; never fewer than 2 so a kill
// always leaves rotation non-empty.
void BM_ServeFailover(benchmark::State& state) {
  const auto& x = cached_input(kShardedRows);
  const std::uint64_t nnz =
      g_router->shard(0).model(g_router_model).total_nnz();
  const bool chaos = state.thread_index() == 0;
  const auto shards = g_router->num_shards();
  std::size_t victim = 0;
  std::uint64_t kills = 0;
  std::int64_t i = 0;
  for (auto _ : state) {
    auto fut = g_router
                   ->submit(serve::InferenceRequest::borrowed(
                       g_router_model, x, kShardedRows))
                   .take_future();
    benchmark::DoNotOptimize(fut.get().data());
    // First kill lands on the very first iteration: even the shortest
    // CI sample (scripts/check_perf_smoke.py) observes churn.
    if (chaos && ++i % 16 == 1) {
      g_router->kill_shard(victim);    // orphans fail over to siblings
      g_router->restart_shard(victim); // replay registry, rejoin rotation
      victim = (victim + 1) % shards;
      ++kills;
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kShardedRows * static_cast<std::int64_t>(nnz));
  if (chaos) {
    state.counters["kills"] = benchmark::Counter(static_cast<double>(kills));
    state.counters["failovers"] =
        benchmark::Counter(static_cast<double>(g_router->failovers()));
    const auto merged = g_router->stats(g_router_model);
    state.counters["e2e_p95_us"] = benchmark::Counter(merged.e2e_p95 * 1e6);
  }
}

BENCHMARK(BM_ServeFailover)
    ->Args({2})
    ->Args({4})
    ->Setup(SetupRouter)
    ->Teardown(TeardownRouter)
    ->Threads(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->MeasureProcessCPUTime();

}  // namespace
}  // namespace radix

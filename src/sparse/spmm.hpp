// Sparse x dense and dense x sparse multiply kernels.
//
// These are the inner loops of both the inference engine (infer/) and the
// sparse NN layers (nn/):
//
//   spmm_dense_csr:  Y[b x n] = X[b x m] * W[m x n]   (W sparse)
//     -- forward pass of a sparse linear layer: iterate W's rows r,
//        scatter X[:, r] * w(r, c) into Y[:, c].  Parallel over batch.
//
//   spmm_dense_csrT: Y[b x m] = X[b x n] * W^T         (W sparse, m x n)
//     -- backward pass (dX = dY * W^T) without materializing W^T:
//        gather along W's rows.
//
// Dense operands are row-major float arrays (batch-major), matching
// nn::Tensor's layout.
#pragma once

#include <cstddef>

#include "sparse/csr.hpp"

namespace radix {

/// y[b*n + c] += sum_r x[b*m + r] * w(r, c);  y must be zero-initialized
/// by the caller (or hold an accumuland).
void spmm_dense_csr(const float* x, index_t batch, index_t m,
                    const Csr<float>& w, float* y);

/// y[b*m + r] += sum_c x[b*n + c] * w(r, c)   -- multiply by W^T.
void spmm_dense_csrT(const float* x, index_t batch, index_t n,
                     const Csr<float>& w, float* y);

/// Sparse matrix times dense vector: y[r] = sum_c w(r,c) * x[c].
void spmv(const Csr<float>& w, const float* x, float* y);

/// Accumulate the outer-product gradient restricted to W's pattern:
/// grad(r, c) += sum_b x[b*m + r] * dy[b*n + c] for every stored (r, c).
/// `grad` must have the same pattern as `w` (values are written into the
/// parallel value array `grad_values`).
void sddmm_pattern(const float* x, const float* dy, index_t batch,
                   index_t m, index_t n, const Csr<float>& w,
                   float* grad_values);

}  // namespace radix

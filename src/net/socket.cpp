#include "net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "support/error.hpp"

namespace radix::net {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw IoError(std::string(what) + ": " + std::strerror(errno));
}

void set_nodelay(int fd) {
  const int one = 1;
  // Best-effort: a socketpair or exotic transport without TCP_NODELAY
  // still works, just with Nagle latency.
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

sockaddr_in loopback(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

}  // namespace

void Fd::reset() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::pair<Fd, std::uint16_t> listen_tcp(std::uint16_t port, int backlog) {
  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) throw_errno("socket");
  const int one = 1;
  if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) !=
      0) {
    throw_errno("setsockopt(SO_REUSEADDR)");
  }
  sockaddr_in addr = loopback(port);
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    throw_errno("bind");
  }
  if (::listen(fd.get(), backlog) != 0) throw_errno("listen");
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound), &len) !=
      0) {
    throw_errno("getsockname");
  }
  return {std::move(fd), ntohs(bound.sin_port)};
}

Fd connect_tcp(std::uint16_t port) {
  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) throw_errno("socket");
  sockaddr_in addr = loopback(port);
  int rc;
  do {
    rc = ::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) throw_errno("connect");
  set_nodelay(fd.get());
  return fd;
}

std::optional<Fd> accept_one(const Fd& listener) {
  for (;;) {
    const int fd = ::accept4(listener.get(), nullptr, nullptr, SOCK_CLOEXEC);
    if (fd >= 0) {
      Fd conn(fd);
      set_nodelay(conn.get());
      return conn;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return std::nullopt;
    // A connection that died between readiness and accept is not an
    // event-loop error; report "nothing to accept".
    if (errno == ECONNABORTED) return std::nullopt;
    throw_errno("accept");
  }
}

void set_nonblocking(const Fd& fd, bool nonblocking) {
  const int flags = ::fcntl(fd.get(), F_GETFL, 0);
  if (flags < 0) throw_errno("fcntl(F_GETFL)");
  const int want = nonblocking ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(fd.get(), F_SETFL, want) != 0) throw_errno("fcntl(F_SETFL)");
}

bool read_exact(const Fd& fd, std::span<std::uint8_t> buf) {
  std::size_t off = 0;
  while (off < buf.size()) {
    const ssize_t n = ::read(fd.get(), buf.data() + off, buf.size() - off);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n == 0) {
      if (off == 0) return false;  // clean EOF between frames
      throw IoError("read: connection closed mid-frame");
    }
    if (errno == EINTR) continue;
    throw_errno("read");
  }
  return true;
}

void write_all(const Fd& fd, std::span<const std::uint8_t> buf) {
  std::size_t off = 0;
  while (off < buf.size()) {
    const ssize_t n = ::send(fd.get(), buf.data() + off, buf.size() - off,
                             MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    throw_errno("write");
  }
}

IoStatus read_some(const Fd& fd, std::vector<std::uint8_t>& buf) {
  std::uint8_t chunk[16 * 1024];
  for (;;) {
    const ssize_t n = ::read(fd.get(), chunk, sizeof(chunk));
    if (n > 0) {
      buf.insert(buf.end(), chunk, chunk + n);
      return IoStatus::kProgress;
    }
    if (n == 0) return IoStatus::kClosed;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return IoStatus::kWouldBlock;
    throw_errno("read");
  }
}

IoStatus write_some(const Fd& fd, std::span<const std::uint8_t> buf,
                    std::size_t& offset) {
  while (offset < buf.size()) {
    const ssize_t n = ::send(fd.get(), buf.data() + offset,
                             buf.size() - offset, MSG_NOSIGNAL);
    if (n > 0) {
      offset += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      return IoStatus::kWouldBlock;
    }
    throw_errno("write");
  }
  return IoStatus::kProgress;
}

void send_frame(const Fd& fd, MsgType type, std::uint64_t correlation,
                std::span<const std::uint8_t> body) {
  write_all(fd, encode_frame(type, correlation, body));
}

std::optional<Frame> recv_frame(const Fd& fd) {
  std::uint8_t head[4];
  if (!read_exact(fd, head)) return std::nullopt;
  std::uint32_t length = 0;
  for (std::size_t i = 0; i < 4; ++i) length |= std::uint32_t(head[i]) << (8 * i);
  if (length < 1 + 8 || length > kMaxFrameBytes) {
    throw IoError("wire: corrupt frame length");
  }
  std::vector<std::uint8_t> rest(length);
  if (!read_exact(fd, rest)) {
    throw IoError("read: connection closed mid-frame");
  }
  Frame f;
  f.type = static_cast<MsgType>(rest[0]);
  std::uint64_t corr = 0;
  for (std::size_t i = 0; i < 8; ++i) corr |= std::uint64_t(rest[1 + i]) << (8 * i);
  f.correlation = corr;
  f.body.assign(rest.begin() + 9, rest.end());
  return f;
}

}  // namespace radix::net

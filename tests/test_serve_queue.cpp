// Unit tests for the serving substrate: the bounded MPMC queue
// (standalone mode) and the dynamic micro-batcher's coalescing policy
// (row budget, FIFO no-reorder, max_delay deadline, round-robin across
// models, close-drain) plus batch assembly (zero-copy single-request
// fast path, contiguous concatenation).
#include "serve/batcher.hpp"
#include "serve/queue.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <numeric>
#include <thread>
#include <vector>

namespace radix::serve {
namespace {

using namespace std::chrono_literals;

Request make_request(index_t rows, const float* input = nullptr) {
  Request r;
  r.rows = rows;
  r.input = input;
  r.enqueued = MicroBatcher::Clock::now();
  return r;
}

TEST(BoundedMpmcQueue, FifoAndTryVariants) {
  BoundedMpmcQueue<int> q(3);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_TRUE(q.try_push(3));
  EXPECT_FALSE(q.try_push(4)) << "capacity 3 must reject a fourth item";
  EXPECT_EQ(q.size(), 3u);

  int v = 0;
  EXPECT_TRUE(q.try_pop(v));
  EXPECT_EQ(v, 1);
  EXPECT_TRUE(q.try_pop(v));
  EXPECT_EQ(v, 2);
  EXPECT_TRUE(q.try_pop(v));
  EXPECT_EQ(v, 3);
  EXPECT_FALSE(q.try_pop(v));
}

TEST(BoundedMpmcQueue, CloseDrainsThenRefuses) {
  BoundedMpmcQueue<int> q(4);
  ASSERT_TRUE(q.push(10));
  ASSERT_TRUE(q.push(11));
  q.close();
  EXPECT_FALSE(q.push(12)) << "push after close must refuse";
  EXPECT_FALSE(q.try_push(12));
  int v = 0;
  EXPECT_TRUE(q.pop(v)) << "queued items stay poppable after close";
  EXPECT_EQ(v, 10);
  EXPECT_TRUE(q.pop(v));
  EXPECT_EQ(v, 11);
  EXPECT_FALSE(q.pop(v)) << "closed + drained must return false";
}

TEST(BoundedMpmcQueue, BlockingHandoffAcrossThreads) {
  BoundedMpmcQueue<int> q(1);
  std::vector<int> got;
  std::thread consumer([&] {
    int v;
    while (q.pop(v)) got.push_back(v);
  });
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(q.push(i));  // capacity 1: every push waits for the pop
  }
  q.close();
  consumer.join();
  ASSERT_EQ(got.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(got[static_cast<size_t>(i)], i);
}

TEST(MicroBatcher, CoalescesUpToRowBudget) {
  MicroBatcher b(64);
  const std::size_t m = b.add_model();
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(b.submit(m, make_request(2)));

  MicroBatcher::Batch batch;
  std::size_t cursor = 0;
  // 5 x 2 rows against a budget of 8: first claim takes 4 requests.
  ASSERT_TRUE(b.next(batch, /*max_rows=*/8, /*max_delay=*/0us, cursor));
  EXPECT_EQ(batch.model, m);
  EXPECT_EQ(batch.rows, 8u);
  EXPECT_EQ(batch.requests.size(), 4u);
  // The leftover request ships in the second claim.
  ASSERT_TRUE(b.next(batch, 8, 0us, cursor));
  EXPECT_EQ(batch.rows, 2u);
  EXPECT_EQ(batch.requests.size(), 1u);
}

TEST(MicroBatcher, FifoNeverReordersPastANonFittingRequest) {
  MicroBatcher b(64);
  const std::size_t m = b.add_model();
  ASSERT_TRUE(b.submit(m, make_request(3)));
  ASSERT_TRUE(b.submit(m, make_request(6)));  // does not fit after 3
  ASSERT_TRUE(b.submit(m, make_request(1)));  // would fit, must NOT jump

  MicroBatcher::Batch batch;
  std::size_t cursor = 0;
  ASSERT_TRUE(b.next(batch, 8, 0us, cursor));
  EXPECT_EQ(batch.rows, 3u) << "stop at first non-fitting request";
  ASSERT_TRUE(b.next(batch, 8, 0us, cursor));
  EXPECT_EQ(batch.rows, 7u) << "6-row then 1-row request coalesce next";
  EXPECT_EQ(batch.requests.size(), 2u);
}

TEST(MicroBatcher, OversizeRequestShipsAlone) {
  MicroBatcher b(64);
  const std::size_t m = b.add_model();
  ASSERT_TRUE(b.submit(m, make_request(100)));
  ASSERT_TRUE(b.submit(m, make_request(1)));

  MicroBatcher::Batch batch;
  std::size_t cursor = 0;
  ASSERT_TRUE(b.next(batch, 8, 0us, cursor));
  EXPECT_EQ(batch.rows, 100u);
  EXPECT_EQ(batch.requests.size(), 1u);
}

TEST(MicroBatcher, DeadlineShipsPartialBatch) {
  MicroBatcher b(64);
  const std::size_t m = b.add_model();
  ASSERT_TRUE(b.submit(m, make_request(1)));

  MicroBatcher::Batch batch;
  std::size_t cursor = 0;
  const auto t0 = MicroBatcher::Clock::now();
  ASSERT_TRUE(b.next(batch, /*max_rows=*/64, /*max_delay=*/20ms, cursor));
  const auto waited = MicroBatcher::Clock::now() - t0;
  EXPECT_EQ(batch.rows, 1u);
  // Must have honored (roughly) the coalescing window before giving up
  // on filling the batch -- and not waited forever.
  EXPECT_GE(waited, 10ms);
  EXPECT_LT(waited, 5s);
}

TEST(MicroBatcher, LateArrivalsJoinTheOpenBatch) {
  MicroBatcher b(64);
  const std::size_t m = b.add_model();
  ASSERT_TRUE(b.submit(m, make_request(1)));

  std::thread feeder([&] {
    std::this_thread::sleep_for(5ms);
    for (int i = 0; i < 3; ++i) ASSERT_TRUE(b.submit(m, make_request(1)));
  });
  MicroBatcher::Batch batch;
  std::size_t cursor = 0;
  ASSERT_TRUE(b.next(batch, /*max_rows=*/4, /*max_delay=*/2s, cursor));
  feeder.join();
  // The batch fills to the row budget well before the 2s window ends.
  EXPECT_EQ(batch.rows, 4u);
  EXPECT_EQ(batch.requests.size(), 4u);
}

TEST(MicroBatcher, RoundRobinAcrossModels) {
  MicroBatcher b(64);
  const std::size_t m0 = b.add_model();
  const std::size_t m1 = b.add_model();
  ASSERT_TRUE(b.submit(m0, make_request(1)));
  ASSERT_TRUE(b.submit(m1, make_request(1)));
  ASSERT_TRUE(b.submit(m0, make_request(1)));
  ASSERT_TRUE(b.submit(m1, make_request(1)));

  MicroBatcher::Batch batch;
  std::size_t cursor = 0;
  ASSERT_TRUE(b.next(batch, 1, 0us, cursor));
  EXPECT_EQ(batch.model, m0);
  ASSERT_TRUE(b.next(batch, 1, 0us, cursor));
  EXPECT_EQ(batch.model, m1) << "cursor advances past the served model";
  ASSERT_TRUE(b.next(batch, 1, 0us, cursor));
  EXPECT_EQ(batch.model, m0);
  ASSERT_TRUE(b.next(batch, 1, 0us, cursor));
  EXPECT_EQ(batch.model, m1);
}

TEST(MicroBatcher, CloseDrainsQueuedRequestsThenStops) {
  MicroBatcher b(64);
  const std::size_t m = b.add_model();
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(b.submit(m, make_request(1)));
  b.close();
  EXPECT_FALSE(b.submit(m, make_request(1))) << "submit after close";

  MicroBatcher::Batch batch;
  std::size_t cursor = 0;
  index_t drained = 0;
  while (b.next(batch, 64, 0us, cursor)) drained += batch.rows;
  EXPECT_EQ(drained, 3u);
}

TEST(MicroBatcher, NextUnblocksOnClose) {
  MicroBatcher b(64);
  (void)b.add_model();
  std::thread closer([&] {
    std::this_thread::sleep_for(10ms);
    b.close();
  });
  MicroBatcher::Batch batch;
  std::size_t cursor = 0;
  EXPECT_FALSE(b.next(batch, 64, 1h, cursor))
      << "a consumer blocked on an empty batcher must exit on close";
  closer.join();
}

TEST(MicroBatcher, SubmitBackpressureBlocksUntilSpace) {
  MicroBatcher b(/*queue_capacity=*/2);
  const std::size_t m = b.add_model();
  ASSERT_TRUE(b.submit(m, make_request(1)));
  ASSERT_TRUE(b.submit(m, make_request(1)));
  EXPECT_FALSE(b.try_submit(m, make_request(1))) << "queue full";

  std::thread producer([&] {
    ASSERT_TRUE(b.submit(m, make_request(1)));  // blocks until a claim
  });
  std::this_thread::sleep_for(5ms);
  MicroBatcher::Batch batch;
  std::size_t cursor = 0;
  ASSERT_TRUE(b.next(batch, 1, 0us, cursor));
  producer.join();
  EXPECT_EQ(b.pending(m), 2u);
}

TEST(MicroBatcher, BlockedProducerIsWokenDuringCoalescingWindow) {
  // Regression: with queue_capacity < max_rows, the requests that fill
  // a batch come from a producer blocked on the full queue.  The
  // consumer's pops during the coalescing window must wake it
  // immediately -- without that wake both sides sleep out the whole
  // max_delay and the batch ships partial.
  MicroBatcher b(/*queue_capacity=*/1);
  const std::size_t m = b.add_model();
  ASSERT_TRUE(b.submit(m, make_request(1)));

  std::thread producer([&] {
    for (int i = 0; i < 2; ++i) ASSERT_TRUE(b.submit(m, make_request(1)));
  });
  MicroBatcher::Batch batch;
  std::size_t cursor = 0;
  const auto t0 = MicroBatcher::Clock::now();
  ASSERT_TRUE(b.next(batch, /*max_rows=*/3, /*max_delay=*/5s, cursor));
  const auto waited = MicroBatcher::Clock::now() - t0;
  producer.join();
  EXPECT_EQ(batch.rows, 3u) << "batch must fill from the blocked producer";
  EXPECT_LT(waited, 2s) << "must not sleep out the max_delay window";
}

TEST(BatchAssembly, SingleRequestIsZeroCopy) {
  std::vector<float> x(6, 1.5f);
  MicroBatcher::Batch batch;
  batch.rows = 2;
  batch.requests.push_back(make_request(2, x.data()));

  BatchAssembly assembly;
  const float* panel = assembly.assemble(batch, /*input_width=*/3);
  EXPECT_EQ(panel, x.data()) << "one request must pass through zero-copy";
  EXPECT_EQ(assembly.staging_capacity(), 0u);
}

TEST(BatchAssembly, ConcatenatesRequestsContiguously) {
  std::vector<float> a(3), b(6);
  std::iota(a.begin(), a.end(), 0.0f);   // rows 0
  std::iota(b.begin(), b.end(), 10.0f);  // rows 1..2
  MicroBatcher::Batch batch;
  batch.rows = 3;
  batch.requests.push_back(make_request(1, a.data()));
  batch.requests.push_back(make_request(2, b.data()));

  BatchAssembly assembly;
  const float* panel = assembly.assemble(batch, 3);
  ASSERT_NE(panel, a.data());
  const std::vector<float> want = {0, 1, 2, 10, 11, 12, 13, 14, 15};
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(panel[i], want[i]) << "at " << i;
  }
  // Growth-only staging: a second assemble of the same shape reuses it.
  const std::size_t cap = assembly.staging_capacity();
  (void)assembly.assemble(batch, 3);
  EXPECT_EQ(assembly.staging_capacity(), cap);
}

}  // namespace
}  // namespace radix::serve

// Request-tracing tests: the lock-free TraceRing must survive wrap and
// concurrent recording without corrupting events; the Tracer must
// reconstruct per-request timelines deterministically under a
// FakeClock; and -- the acceptance scenario -- a request that fails
// over mid-flight through a two-shard ShardRouter must yield ONE
// timeline whose events span both shards under the same RequestId.
// Sized to stay meaningful under ThreadSanitizer (`serve` CTest label).
#include "serve/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <set>
#include <span>
#include <thread>
#include <vector>

#include "radixnet/graph_challenge.hpp"
#include "serve/engine.hpp"
#include "serve/router.hpp"
#include "support/random.hpp"
#include "support/thread.hpp"

namespace radix::serve {
namespace {

using namespace std::chrono_literals;

std::shared_ptr<infer::SparseDnn> make_dnn(index_t neurons,
                                           std::size_t layers,
                                           std::uint64_t seed) {
  Rng rng(seed);
  const auto net = gc::network(neurons, layers, &rng);
  return std::make_shared<infer::SparseDnn>(net.layers, net.bias, gc::kClamp);
}

TraceEvent event(RequestId id, std::int64_t t, TraceEventKind kind,
                 std::uint16_t shard = 0, std::uint32_t rows = 1) {
  TraceEvent e;
  e.id = id;
  e.t_ns = t;
  e.kind = kind;
  e.priority = Priority::kBatch;
  e.shard = shard;
  e.model = 0;
  e.rows = rows;
  return e;
}

TEST(TraceRing, RoundTripsEventsAndRoundsCapacity) {
  TraceRing ring(6);  // rounds up to 8
  EXPECT_EQ(ring.capacity(), 8u);
  EXPECT_EQ(ring.recorded(), 0u);
  EXPECT_EQ(ring.dropped(), 0u);

  for (int i = 0; i < 5; ++i) {
    ring.record(event(100 + i, 1000 + i, TraceEventKind::kSubmitted, 3,
                      static_cast<std::uint32_t>(i)));
  }
  std::vector<TraceEvent> out;
  ring.snapshot(out);
  ASSERT_EQ(out.size(), 5u);
  EXPECT_EQ(ring.recorded(), 5u);
  EXPECT_EQ(ring.dropped(), 0u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(out[i].id, 100u + i);
    EXPECT_EQ(out[i].t_ns, 1000 + i);
    EXPECT_EQ(out[i].kind, TraceEventKind::kSubmitted);
    EXPECT_EQ(out[i].shard, 3u);
    EXPECT_EQ(out[i].priority, Priority::kBatch);
    EXPECT_EQ(out[i].rows, static_cast<std::uint32_t>(i));
  }
}

TEST(TraceRing, WrapKeepsTheNewestEventsAndCountsDrops) {
  TraceRing ring(8);
  for (int i = 0; i < 20; ++i) {
    ring.record(event(i, i, TraceEventKind::kCompleted));
  }
  EXPECT_EQ(ring.recorded(), 20u);
  EXPECT_EQ(ring.dropped(), 12u) << "20 recorded into 8 slots";
  std::vector<TraceEvent> out;
  ring.snapshot(out);
  ASSERT_EQ(out.size(), 8u);
  // The ring keeps exactly the last `capacity` events, in write order.
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].id, 12u + i);
  }
}

TEST(TraceRing, ConcurrentRecordNeverYieldsTornEvents) {
  // Hammer one small ring from several threads while a reader snapshots
  // continuously.  The seqlock protocol promises every snapshot event
  // is internally consistent: we encode the writer id into every field
  // and reject any event whose fields disagree.  (Under TSan this is
  // also the data-race certification of the hot path.)
  TraceRing ring(64);
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 2000;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> torn{0};

  std::thread reader([&] {
    std::vector<TraceEvent> out;
    while (!stop.load(std::memory_order_acquire)) {
      ring.snapshot(out);
      for (const TraceEvent& e : out) {
        // Writer w stamped id = w*kPerWriter + i, t_ns = id, rows = w.
        const auto w = static_cast<std::uint32_t>(e.id / kPerWriter);
        if (e.t_ns != static_cast<std::int64_t>(e.id) || e.rows != w ||
            e.shard != static_cast<std::uint16_t>(w)) {
          torn.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  });
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        const RequestId id = static_cast<RequestId>(w) * kPerWriter + i;
        ring.record(event(id, static_cast<std::int64_t>(id),
                          TraceEventKind::kSubmitted,
                          static_cast<std::uint16_t>(w),
                          static_cast<std::uint32_t>(w)));
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(torn.load(), 0u) << "snapshot surfaced a torn event";
  EXPECT_EQ(ring.recorded(), kWriters * kPerWriter);
  std::vector<TraceEvent> out;
  ring.snapshot(out);
  EXPECT_EQ(out.size(), ring.capacity());
}

TEST(Timelines, GroupsByIdSortsByTimeAndDropsUntraced) {
  std::vector<TraceEvent> events;
  // Interleaved ids, out-of-order times, one id-0 (untraced) stray.
  events.push_back(event(7, 300, TraceEventKind::kCompleted));
  events.push_back(event(9, 150, TraceEventKind::kSubmitted));
  events.push_back(event(7, 100, TraceEventKind::kSubmitted));
  events.push_back(event(0, 50, TraceEventKind::kSubmitted));
  events.push_back(event(7, 200, TraceEventKind::kClaimed));
  // Tie at t=100 for id 7: kAdmitted(1) must sort after kSubmitted(0)
  // because the kind values are lifecycle-ordered.
  events.push_back(event(7, 100, TraceEventKind::kAdmitted));

  const auto timelines = build_timelines(std::move(events));
  ASSERT_EQ(timelines.size(), 2u);
  EXPECT_EQ(timelines[0].id, 7u);
  EXPECT_EQ(timelines[1].id, 9u);
  ASSERT_EQ(timelines[0].events.size(), 4u);
  EXPECT_EQ(timelines[0].events[0].kind, TraceEventKind::kSubmitted);
  EXPECT_EQ(timelines[0].events[1].kind, TraceEventKind::kAdmitted);
  EXPECT_EQ(timelines[0].events[2].kind, TraceEventKind::kClaimed);
  EXPECT_EQ(timelines[0].events[3].kind, TraceEventKind::kCompleted);
  EXPECT_TRUE(timelines[0].has(TraceEventKind::kClaimed));
  EXPECT_FALSE(timelines[0].has(TraceEventKind::kShed));
  EXPECT_FALSE(to_string(timelines[0]).empty());
}

TEST(EngineTrace, FullLifecycleTimelineIsDeterministicUnderFakeClock) {
  FakeClock clock;
  Tracer tracer({.ring_capacity = 256, .rings = 1, .clock = &clock});
  const auto dnn = make_dnn(1024, 2, 41);
  Engine engine({.workers = 1,
                 .max_delay = 0us,
                 .clock = &clock,
                 .tracer = &tracer,
                 .shard_index = 5});
  const auto id = engine.add_model(dnn, "traced");
  Rng irng(42);
  const auto x = gc::synthetic_input(2, 1024, 0.4, irng);

  auto result = engine.submit(InferenceRequest::borrowed(id, x, 2));
  ASSERT_TRUE(result.admitted());
  const RequestId rid = result.request_id();
  EXPECT_NE(rid, 0u);
  EXPECT_EQ(result.take_future().get().size(), 2u * 1024u);
  engine.shutdown();

  const auto timelines = build_timelines(tracer.drain());
  const auto it = std::find_if(timelines.begin(), timelines.end(),
                               [&](const auto& t) { return t.id == rid; });
  ASSERT_NE(it, timelines.end()) << "no timeline for the submitted id";
  // The full lifecycle in order; with max_delay=0 and one request the
  // FakeClock never advances, so ordering is carried by the
  // lifecycle-ordered kind values alone -- fully deterministic.
  const std::vector<TraceEventKind> want = {
      TraceEventKind::kSubmitted,    TraceEventKind::kAdmitted,
      TraceEventKind::kClaimed,      TraceEventKind::kBatched,
      TraceEventKind::kForwardBegin, TraceEventKind::kForwardEnd,
      TraceEventKind::kCompleted};
  ASSERT_EQ(it->events.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(it->events[i].kind, want[i]) << "position " << i;
    EXPECT_EQ(it->events[i].shard, 5u);
    EXPECT_EQ(it->events[i].t_ns, it->events.front().t_ns)
        << "FakeClock never advanced; every stamp must be equal";
  }
  EXPECT_EQ(it->shards(), std::vector<std::uint16_t>{5});
  EXPECT_EQ(it->events.front().rows, 2u);
}

TEST(EngineTrace, RequestIdReachesCompletionTimingAndExpiredIsTraced) {
  FakeClock clock;
  Tracer tracer({.ring_capacity = 256, .rings = 1, .clock = &clock});
  const auto dnn = make_dnn(1024, 2, 43);
  Engine engine({.workers = 1,
                 .max_batch_rows = 1,
                 .max_delay = 0us,
                 .clock = &clock,
                 .tracer = &tracer});
  const auto id = engine.add_model(dnn, "exp");
  Rng irng(44);
  const auto x = gc::synthetic_input(1, 1024, 0.4, irng);

  // Park the single worker inside a completion callback so the next
  // submission stays queued until released.
  std::promise<void> parked;
  std::promise<void> release;
  auto release_future = release.get_future();
  std::atomic<std::uint64_t> parker_timing_id{0};
  auto parker = engine.submit(
      InferenceRequest::borrowed(id, x, 1),
      {.done = [&](std::span<const float>, const RequestTiming& timing,
                   std::exception_ptr) {
        parker_timing_id.store(timing.request_id);
        parked.set_value();
        release_future.wait();
      }});
  ASSERT_TRUE(parker.admitted());
  parked.get_future().wait();
  EXPECT_EQ(parker_timing_id.load(), parker.request_id())
      << "RequestTiming must carry the id SubmitResult reported";

  // Already-expired deadline: admitted, then shed with kExpired at the
  // claim that finds its budget spent.
  auto doomed = engine.submit(InferenceRequest::borrowed(id, x, 1),
                              {.deadline = -1us});
  ASSERT_TRUE(doomed.admitted());
  clock.advance(1ms);
  release.set_value();
  EXPECT_THROW(doomed.get(), DeadlineExceededError);
  engine.shutdown();

  const auto timelines = build_timelines(tracer.drain());
  const auto it =
      std::find_if(timelines.begin(), timelines.end(), [&](const auto& t) {
        return t.id == doomed.request_id();
      });
  ASSERT_NE(it, timelines.end());
  EXPECT_TRUE(it->has(TraceEventKind::kSubmitted));
  EXPECT_TRUE(it->has(TraceEventKind::kAdmitted));
  EXPECT_TRUE(it->has(TraceEventKind::kExpired));
  EXPECT_FALSE(it->has(TraceEventKind::kForwardBegin))
      << "an expired request must never reach the forward pass";
  // The expiry was claimed 1ms of fake time after submission.
  EXPECT_EQ(it->events.back().t_ns - it->events.front().t_ns, 1'000'000);
}

TEST(RouterTrace, FailoverStitchesOneTimelineAcrossTwoShards) {
  // The acceptance scenario: a request admitted on shard 0, orphaned by
  // kill_shard, resubmitted on shard 1, must reconstruct into ONE
  // timeline under one RequestId with events from BOTH shards and a
  // kFailover hop -- deterministic timestamps under the FakeClock.
  FakeClock clock;
  Tracer tracer({.ring_capacity = 1024, .rings = 1, .clock = &clock});
  const auto dnn = make_dnn(1024, 2, 45);
  ShardRouter router({.shards = 2,
                      .engine = {.workers = 1,
                                 .max_batch_rows = 1,
                                 .max_delay = 0us,
                                 .queue_capacity = 64,
                                 .clock = &clock,
                                 .tracer = &tracer}});
  const auto id = router.add_model(dnn, "ha");
  Rng irng(46);
  const auto x = gc::synthetic_input(1, 1024, 0.4, irng);

  // Park both shards' workers so queued traffic stays queued.
  std::atomic<int> parked{0};
  std::promise<void> release;
  std::shared_future<void> release_future = release.get_future().share();
  int parkers = 0;
  while (parked.load() < 2 && parkers < 64) {
    (void)router.submit(InferenceRequest::borrowed(id, x, 1),
                        {.done = [&](std::span<const float>,
                                     const RequestTiming&,
                                     std::exception_ptr) {
                          ++parked;
                          release_future.wait();
                        }});
    ++parkers;
    std::this_thread::sleep_for(1ms);
  }
  ASSERT_EQ(parked.load(), 2) << "could not park both shard workers";

  // Queue traffic on both shards; shard 0's queued requests will be
  // orphaned.  Record each submission's id for timeline lookup.
  std::vector<std::future<std::vector<float>>> futures;
  std::vector<RequestId> ids;
  for (int i = 0; i < 10; ++i) {
    auto r = router.submit(InferenceRequest::borrowed(id, x, 1));
    ASSERT_TRUE(r.admitted());
    ids.push_back(r.request_id());
    futures.push_back(r.take_future());
  }
  const std::size_t orphans = router.shard(0).pending(id);
  ASSERT_GT(orphans, 0u) << "two-choice routing left shard 0 empty";

  // Distinct fake timestamp for the failover hop, so cross-shard event
  // order is visible in the timeline, not just inferable from kinds.
  clock.advance(2ms);
  std::thread killer([&] { router.kill_shard(0); });
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (router.failovers() < orphans &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(1ms);
  }
  ASSERT_EQ(router.failovers(), orphans);
  clock.advance(2ms);
  release.set_value();
  killer.join();
  for (auto& f : futures) {
    EXPECT_EQ(f.get().size(), 1024u);
  }
  router.shutdown();

  const auto timelines = build_timelines(tracer.drain());
  for (const RequestId rid : ids) {
    const auto matches = std::count_if(
        timelines.begin(), timelines.end(),
        [&](const auto& t) { return t.id == rid; });
    ASSERT_EQ(matches, 1) << "exactly one timeline per request id";
  }
  // Every orphan -- the numbered submissions above AND any extra
  // parker submission that queued on shard 0 -- must reconstruct into
  // a stitched two-shard timeline with the kFailover hop.
  std::size_t stitched = 0;
  for (const auto& timeline : timelines) {
    if (!timeline.has(TraceEventKind::kFailover)) continue;
    ++stitched;
    EXPECT_EQ(timeline.shards(), (std::vector<std::uint16_t>{0, 1}))
        << "a failed-over timeline must carry events from both shards";
    EXPECT_TRUE(timeline.has(TraceEventKind::kCompleted));
    // Both hops submitted: two kSubmitted events under one id, the
    // second (shard 1) at the post-kill fake timestamp.
    std::vector<const TraceEvent*> submits;
    for (const TraceEvent& e : timeline.events) {
      if (e.kind == TraceEventKind::kSubmitted) submits.push_back(&e);
    }
    ASSERT_EQ(submits.size(), 2u);
    EXPECT_EQ(submits[0]->shard, 0u);
    EXPECT_EQ(submits[1]->shard, 1u);
    EXPECT_EQ(submits[1]->t_ns - submits[0]->t_ns, 2'000'000)
        << "failover hop must stamp the advanced FakeClock";
  }
  EXPECT_EQ(stitched, orphans)
      << "every failed-over request must reconstruct a stitched timeline";
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(Tracer, DrainMergesRingsSortedAndCountsAcrossThreads) {
  FakeClock clock;
  Tracer tracer({.ring_capacity = 128, .rings = 4, .clock = &clock});
  constexpr int kThreads = 8;
  constexpr int kEach = 50;
  std::vector<std::thread> threads;
  for (int w = 0; w < kThreads; ++w) {
    threads.emplace_back([&, w] {
      for (int i = 0; i < kEach; ++i) {
        tracer.record(static_cast<RequestId>(w * kEach + i + 1),
                      TraceEventKind::kSubmitted, 0, 0, Priority::kBatch, 1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(tracer.recorded(), kThreads * kEach);
  // Threads pick rings by thread-id hash, so a ring CAN overflow when
  // several threads collide on it; what drain() promises is exactly the
  // resident events, globally sorted, with recorded/dropped accounting
  // for the rest.
  const auto events = tracer.drain();
  EXPECT_EQ(events.size(),
            static_cast<std::size_t>(tracer.recorded() - tracer.dropped()));
  EXPECT_TRUE(std::is_sorted(events.begin(), events.end(),
                             [](const TraceEvent& a, const TraceEvent& b) {
                               return a.t_ns < b.t_ns ||
                                      (a.t_ns == b.t_ns && a.id < b.id);
                             }));
  std::set<RequestId> ids;
  for (const auto& e : events) ids.insert(e.id);
  EXPECT_EQ(ids.size(), events.size()) << "every recorded id is distinct";
}

}  // namespace
}  // namespace radix::serve

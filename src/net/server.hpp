// The async network front-end: an epoll event loop serving the wire
// protocol (net/wire.hpp) on top of any serve::Backend.
//
// Threading model (sized for "many connections, few cores"):
//
//   * ONE event-loop thread owns the listener and every connection's
//     socket I/O: nonblocking reads accumulate into a per-connection
//     receive buffer until try_parse_frame yields complete frames;
//     nonblocking writes drain a per-connection output queue, arming
//     EPOLLOUT only while bytes are actually pending.  Partial reads,
//     partial writes and EINTR are the normal case here, not errors.
//   * A small SUBMIT POOL executes the decoded verbs.  Inference
//     submissions go through the backend's bounded-wait admission path:
//     a client asking Admission::kBlock gets the block CLAMPED to
//     ServerOptions::max_admission_wait (kBoundedWait under the hood,
//     i.e. Engine's try_submit_for seam) so a saturated backend
//     backpressures the client with a rejection instead of parking a
//     pool thread forever.  Admin verbs (stats, metrics, shard
//     lifecycle) run on the same pool -- a drain that takes seconds
//     never stalls socket I/O.
//   * COMPLETIONS arrive on backend worker threads: the DoneFn encodes
//     the kResult frame, appends it to the connection's output queue
//     under the connection mutex, and wakes the event loop through an
//     eventfd.  A connection that disconnected mid-request flips to
//     closed under that same mutex first, so late completions see the
//     flag and drop the frame -- orphaned responses are dropped, never
//     written to a reused fd and never leaked (the capsule dies with
//     the shared_ptr).
//
// The server does NOT own the backend: radix-served composes
// (models -> Engine/ShardRouter -> Server) and tears down in reverse.
// Admin verbs beyond the Backend interface (per-class stats, shard
// drain/restart, metrics text) are injected as AdminHooks so the
// server stays decoupled from which backend it fronts.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/socket.hpp"
#include "net/wire.hpp"
#include "serve/backend.hpp"
#include "serve/qos.hpp"

namespace radix::serve {
class Engine;
class ShardRouter;
class MetricsRegistry;
enum class ShardHealth : std::uint8_t;  // serve/router.hpp
}  // namespace radix::serve

namespace radix::net {

/// Backend-specific admin capabilities, injected per server.  An unset
/// hook answers its verb with a kError frame ("unsupported") -- the
/// protocol degrades, it never crashes.
struct AdminHooks {
  /// kClassStatsReq: merged per-priority-class counters.
  std::function<serve::ServeStats(serve::Priority)> class_stats{};
  /// kMetricsReq: Prometheus text exposition of the backend's state.
  std::function<std::string()> metrics_text{};
  /// kShardCtlReq: apply `verb` to shard `index` (kHealth applies
  /// nothing), then return every shard's health.
  std::function<std::vector<serve::ShardHealth>(ShardVerb, std::size_t)>
      shard_ctl{};
  /// kListModelsReq: one registry row per model id.
  std::function<WireModelInfo(serve::ModelId)> model_info{};
  /// kSaveModelReq: serialize model `id` as a RADIXART artifact
  /// (store/artifact.hpp) at `path` on the SERVER's filesystem; returns
  /// the artifact size in bytes.
  std::function<std::uint64_t(serve::ModelId, const std::string& path)>
      save_model{};
  /// kLoadModelReq: map + validate the artifact at `path`, register it
  /// under `name` (empty = the name stored in the artifact) and return
  /// the new model id.
  std::function<serve::ModelId(const std::string& path,
                               const std::string& name)>
      load_model{};
};

/// The full hook set for the composite backend: class_stats /
/// export_metrics / drain-restart-kill / registry rows off the router.
AdminHooks make_admin_hooks(serve::ShardRouter& router);
/// Single-engine hook set: everything but shard_ctl (one shard, no
/// lifecycle verbs -- kHealth still answers via the engine's state).
AdminHooks make_admin_hooks(serve::Engine& engine);

struct ServerOptions {
  /// TCP port on 127.0.0.1; 0 binds an ephemeral port (read it back
  /// from Server::port() -- the smoke tests do).
  std::uint16_t port = 0;
  /// Threads executing decoded verbs (admission waits happen here).
  std::size_t submit_workers = 2;
  /// Clamp applied to Admission::kBlock submissions, converting them to
  /// kBoundedWait so a saturated backend rejects instead of wedging a
  /// pool thread.  kBoundedWait requests keep min(their timeout, this).
  std::chrono::microseconds max_admission_wait{250'000};
  AdminHooks hooks{};
};

class Server {
 public:
  /// Binds and starts serving immediately (event loop + submit pool).
  /// `backend` must outlive the server.
  Server(serve::Backend& backend, ServerOptions options = {});
  ~Server();  // stop()

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  std::uint16_t port() const noexcept { return port_; }

  /// True once stop() ran or a client sent kShutdownReq.
  bool stopped() const noexcept;

  /// Block until a kShutdownReq arrives (or stop() is called from
  /// another thread) -- the radix-served main loop.
  void wait();

  /// Stop accepting, close every connection, join the threads.  In-
  /// flight backend requests still complete (the backend owns them);
  /// their responses are dropped with the connections.  Idempotent.
  void stop();

  /// Connections accepted over the server's lifetime (observability +
  /// test assertions).
  std::uint64_t connections_accepted() const noexcept;
  /// Responses dropped because their connection was gone (disconnect
  /// mid-request); the orphan-handling counter the tests pin.
  std::uint64_t orphaned_responses() const noexcept;

 private:
  struct Connection;
  struct Job;

  void event_loop();
  void pool_loop();
  void accept_new();
  /// Drain readable bytes + parse frames into jobs; false = close conn.
  bool handle_readable(const std::shared_ptr<Connection>& conn);
  bool handle_writable(const std::shared_ptr<Connection>& conn);
  void close_connection(const std::shared_ptr<Connection>& conn);

  /// Execute one decoded frame (submit pool).
  void execute(const std::shared_ptr<Connection>& conn, const Frame& frame);
  void execute_submit(const std::shared_ptr<Connection>& conn,
                      const Frame& frame);

  /// Append an encoded frame to the connection's output queue and wake
  /// the event loop; drops (and counts) when the connection is closed.
  void enqueue_response(const std::shared_ptr<Connection>& conn, MsgType type,
                        std::uint64_t correlation,
                        std::span<const std::uint8_t> body);
  void enqueue_error(const std::shared_ptr<Connection>& conn,
                     std::uint64_t correlation, const WireError& error);
  void wake();

  // Shared with completion callbacks: a backend worker delivering a
  // result after the server object is gone (backend shut down late)
  // must still have somewhere safe to count the orphan and a guarded
  // eventfd slot that stop() has already invalidated.
  struct WakeState {
    std::mutex m;
    int fd = -1;  // -1 once the server is stopping; never written after
    std::atomic<std::uint64_t> orphaned{0};
    void wake();
    void invalidate();
  };

  serve::Backend& backend_;
  ServerOptions options_;
  std::uint16_t port_ = 0;

  Fd listener_;
  Fd epoll_;
  Fd wakeup_;  // eventfd: completions / stop() kick the event loop
  std::shared_ptr<WakeState> wake_state_ = std::make_shared<WakeState>();

  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> accepted_{0};

  std::mutex stop_mutex_;     // serializes stop() callers over the joins
  mutable std::mutex mutex_;  // connections map + job queue + stop cv
  std::condition_variable stop_cv_;
  std::condition_variable job_cv_;
  std::unordered_map<int, std::shared_ptr<Connection>> connections_;
  std::deque<Job> jobs_;

  std::thread loop_thread_;
  std::vector<std::thread> pool_;
};

}  // namespace radix::net

// E7 -- training parity (the claim of Alford & Kepner [15] that motivates
// the paper): de-novo sparse topologies train to accuracy comparable with
// dense networks at a fraction of the parameters.
//
// We train five models of identical layer widths on two synthetic tasks
// (glyph images standing in for MNIST, and spirals), differing only in
// the structure of the hidden linear layers:
//   dense        -- fully connected (upper bound on parameters),
//   radix-net    -- this paper's topology (deterministic, symmetric),
//   xnet-random  -- random regular expander [14],
//   xnet-cayley  -- explicit Cayley/circulant X-Net [14],
//   er-random    -- Erdos-Renyi control at matched density.
//
// Expected shape: sparse models within a few accuracy points of dense
// with ~(in-degree / width) of the parameters; radix-net comparable to
// the X-Nets.  Set RADIX_PARITY_EPOCHS to lengthen the runs.
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>

#include "graph/properties.hpp"
#include "nn/trainer.hpp"
#include "radixnet/builder.hpp"
#include "support/table.hpp"
#include "xnet/cayley.hpp"
#include "xnet/er_sparse.hpp"
#include "xnet/random_regular.hpp"

using namespace radix;
using nn::Activation;

namespace {

struct Model {
  std::string name;
  nn::Network net;
};

void run_task(const char* task_name, const nn::Split& split, index_t width,
              index_t in_degree,
              const std::vector<std::vector<std::uint32_t>>& radix_systems,
              index_t epochs) {
  const index_t classes = split.train.num_classes;
  const index_t input = split.train.features();
  Rng rng(42);

  // Input projection widths: input -> width -> width -> head.  The dense
  // input projection is shared by all models; hidden structure varies.
  std::vector<Model> models;

  // dense
  {
    Rng r = rng.split();
    nn::Network net;
    net.add(std::make_unique<nn::DenseLinear>(input, width, r));
    net.add(std::make_unique<nn::ActivationLayer>(Activation::kRelu, width));
    net.add(std::make_unique<nn::DenseLinear>(width, width, r));
    net.add(std::make_unique<nn::ActivationLayer>(Activation::kRelu, width));
    net.add(std::make_unique<nn::DenseLinear>(width, width, r));
    net.add(std::make_unique<nn::ActivationLayer>(Activation::kRelu, width));
    net.add(std::make_unique<nn::DenseLinear>(width, classes, r));
    models.push_back({"dense", std::move(net)});
  }
  auto hidden_sparse = [&](const Fnnt& topo, const std::string& name) {
    Rng r = rng.split();
    nn::Network net;
    net.add(std::make_unique<nn::DenseLinear>(input, width, r));
    net.add(std::make_unique<nn::ActivationLayer>(Activation::kRelu, width));
    for (std::size_t i = 0; i < topo.depth(); ++i) {
      net.add(std::make_unique<nn::SparseLinear>(topo.layer(i), r));
      net.add(std::make_unique<nn::ActivationLayer>(Activation::kRelu,
                                                    topo.layer(i).cols()));
    }
    net.add(std::make_unique<nn::DenseLinear>(width, classes, r));
    models.push_back({name, std::move(net)});
  };

  {
    std::vector<MixedRadix> sys;
    for (const auto& s : radix_systems) sys.emplace_back(s);
    const auto topo =
        build_extended_mixed_radix(RadixNetSpec::extended(std::move(sys)));
    hidden_sparse(topo, "radix-net");
  }
  {
    Rng r(7);
    hidden_sparse(random_xnet({width, width, width}, in_degree, r),
                  "xnet-random");
  }
  hidden_sparse(cayley_xnet(width, in_degree, 2), "xnet-cayley");
  {
    Rng r(11);
    hidden_sparse(er_fnnt({width, width, width},
                          static_cast<double>(in_degree) / width, r),
                  "er-random");
  }

  std::printf("task %s: width %u, sparse in-degree %u, %u epochs, train "
              "%u / test %u\n\n",
              task_name, width, in_degree, epochs, split.train.samples(),
              split.test.samples());
  Table t({"model", "hidden weights", "vs dense", "test acc", "final loss",
           "s/run"});
  for (auto& m : models) {
    nn::Adam opt(0.005f);
    nn::TrainConfig cfg;
    cfg.epochs = epochs;
    cfg.batch_size = 32;
    const auto result = nn::train_classifier(m.net, opt, split, cfg);
    // Hidden weight count = total minus input projection and head.
    const std::uint64_t input_w = static_cast<std::uint64_t>(input) * width;
    const std::uint64_t head_w = static_cast<std::uint64_t>(width) * classes;
    const std::uint64_t hidden_w = m.net.num_weights() - input_w - head_w;
    const std::uint64_t dense_hidden =
        2ull * static_cast<std::uint64_t>(width) * width;
    t.add_row({m.name, std::to_string(hidden_w),
               Table::fmt_pct(static_cast<double>(hidden_w) / dense_hidden, 1),
               Table::fmt(result.final_test_accuracy, 4),
               Table::fmt(result.epochs.back().train_loss, 4),
               Table::fmt(result.wall_seconds, 1)});
  }
  t.print(std::cout);
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("== E7: training parity -- dense vs de-novo sparse "
              "topologies ==\n\n");
  const char* env = std::getenv("RADIX_PARITY_EPOCHS");
  const index_t epochs = env != nullptr
                             ? static_cast<index_t>(std::atoi(env))
                             : 6;

  {
    Rng data_rng(1);
    const auto data = nn::datasets::glyphs(1600, data_rng);
    const auto split = nn::split_dataset(data, 0.2, data_rng);
    // width 256 = (16,16); in-degree 16.
    run_task("glyphs (MNIST stand-in)", split, 256, 16, {{16, 16}},
             epochs);
  }
  {
    Rng data_rng(2);
    const auto data = nn::datasets::spirals(1500, 3, 0.03, data_rng);
    const auto split = nn::split_dataset(data, 0.2, data_rng);
    // width 64 = (8,8); in-degree 8.  The spiral task needs many more
    // passes than glyphs to wind around the arms, and each epoch is
    // ~14x cheaper, so scale the budget.
    run_task("spirals", split, 64, 8, {{8, 8}}, epochs * 10);
  }

  std::printf("paper expectation ([15]): sparse ~= dense accuracy at a "
              "small fraction of hidden weights; radix-net on par with "
              "x-nets.\n");
  return 0;
}

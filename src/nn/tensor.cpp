#include "nn/tensor.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"
#include "support/parallel.hpp"

namespace radix::nn {

Tensor Tensor::matmul(const Tensor& rhs) const {
  RADIX_REQUIRE_DIM(cols_ == rhs.rows_, "Tensor::matmul: shape mismatch");
  Tensor out(rows_, rhs.cols_);
  const index_t k_dim = cols_, n = rhs.cols_;
  parallel_for(
      0, rows_,
      [&](std::int64_t i) {
        const float* a = row(static_cast<index_t>(i));
        float* o = out.row(static_cast<index_t>(i));
        for (index_t k = 0; k < k_dim; ++k) {
          const float av = a[k];
          if (av == 0.0f) continue;
          const float* b = rhs.row(k);
          for (index_t j = 0; j < n; ++j) o[j] += av * b[j];
        }
      },
      /*grain=*/8);
  return out;
}

Tensor Tensor::matmul_transposed(const Tensor& rhs) const {
  RADIX_REQUIRE_DIM(cols_ == rhs.cols_,
                    "Tensor::matmul_transposed: shape mismatch");
  Tensor out(rows_, rhs.rows_);
  parallel_for(
      0, rows_,
      [&](std::int64_t i) {
        const float* a = row(static_cast<index_t>(i));
        float* o = out.row(static_cast<index_t>(i));
        for (index_t j = 0; j < rhs.rows_; ++j) {
          const float* b = rhs.row(j);
          float acc = 0.0f;
          for (index_t k = 0; k < cols_; ++k) acc += a[k] * b[k];
          o[j] = acc;
        }
      },
      /*grain=*/8);
  return out;
}

Tensor Tensor::transposed_matmul(const Tensor& rhs) const {
  RADIX_REQUIRE_DIM(rows_ == rhs.rows_,
                    "Tensor::transposed_matmul: shape mismatch");
  Tensor out(cols_, rhs.cols_);
  // out[m x n] = sum_b this[b, m] * rhs[b, n]; accumulate row-blocks.
  for (index_t b = 0; b < rows_; ++b) {
    const float* a = row(b);
    const float* r = rhs.row(b);
    parallel_for(
        0, cols_,
        [&](std::int64_t m) {
          const float av = a[m];
          if (av == 0.0f) return;
          float* o = out.row(static_cast<index_t>(m));
          for (index_t n = 0; n < rhs.cols_; ++n) o[n] += av * r[n];
        },
        /*grain=*/256);
  }
  return out;
}

void Tensor::add_row_vector(const std::vector<float>& v) {
  RADIX_REQUIRE_DIM(v.size() == cols_,
                    "Tensor::add_row_vector: length mismatch");
  parallel_for(
      0, rows_,
      [&](std::int64_t r) {
        float* o = row(static_cast<index_t>(r));
        for (index_t c = 0; c < cols_; ++c) o[c] += v[c];
      },
      /*grain=*/64);
}

std::vector<float> Tensor::column_sums() const {
  std::vector<float> sums(cols_, 0.0f);
  for (index_t r = 0; r < rows_; ++r) {
    const float* a = row(r);
    for (index_t c = 0; c < cols_; ++c) sums[c] += a[c];
  }
  return sums;
}

float Tensor::max_abs_diff(const Tensor& a, const Tensor& b) {
  RADIX_REQUIRE_DIM(a.rows_ == b.rows_ && a.cols_ == b.cols_,
                    "Tensor::max_abs_diff: shape mismatch");
  float m = 0.0f;
  for (std::size_t i = 0; i < a.data_.size(); ++i) {
    m = std::max(m, std::fabs(a.data_[i] - b.data_[i]));
  }
  return m;
}

Tensor Tensor::slice_rows(index_t begin, index_t end) const {
  RADIX_REQUIRE_DIM(begin <= end && end <= rows_,
                    "Tensor::slice_rows: bad range");
  Tensor out(end - begin, cols_);
  std::copy(row(begin), row(begin) + static_cast<std::size_t>(end - begin) * cols_,
            out.data());
  return out;
}

}  // namespace radix::nn

#include "serve/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "support/error.hpp"

namespace radix::serve {

double Log2Histogram::upper_bound(int k) const noexcept {
  return base_ * std::ldexp(1.0, k);  // base * 2^k
}

void Log2Histogram::record(double value) noexcept {
  if (value < 0.0 || std::isnan(value)) value = 0.0;
  int k = 0;
  if (value > base_) {
    // Smallest k with base * 2^k >= value.
    k = static_cast<int>(std::ceil(std::log2(value / base_)));
    k = std::clamp(k, 0, kBuckets - 1);
  }
  ++counts_[static_cast<std::size_t>(k)];
  ++count_;
  sum_ += value;
  max_ = std::max(max_, value);
}

void Log2Histogram::merge(const Log2Histogram& other) {
  // Bucket k spans (base*2^(k-1), base*2^k]: with equal bases the
  // bucket grids line up and a bucket-wise sum IS the histogram of the
  // pooled samples.  With different bases it would silently misbucket,
  // so refuse.
  RADIX_REQUIRE(base_ == other.base_,
                "Log2Histogram::merge: histograms must share their base");
  for (int k = 0; k < kBuckets; ++k) {
    counts_[static_cast<std::size_t>(k)] +=
        other.counts_[static_cast<std::size_t>(k)];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  max_ = std::max(max_, other.max_);
}

double Log2Histogram::percentile(double p) const noexcept {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  const double rank = p * static_cast<double>(count_);
  std::uint64_t seen = 0;
  for (int k = 0; k < kBuckets; ++k) {
    seen += counts_[static_cast<std::size_t>(k)];
    if (static_cast<double>(seen) >= rank) {
      return std::min(upper_bound(k), max_);
    }
  }
  return max_;
}

Log2Histogram Log2Histogram::from_raw(
    double base, const std::array<std::uint64_t, kBuckets>& counts,
    std::uint64_t count, double sum, double max) {
  std::uint64_t total = 0;
  for (const std::uint64_t c : counts) total += c;
  RADIX_REQUIRE(total == count,
                "Log2Histogram::from_raw: count != sum of bucket counts");
  Log2Histogram h(base);
  h.counts_ = counts;
  h.count_ = count;
  h.sum_ = sum;
  h.max_ = max;
  return h;
}

std::vector<std::pair<double, std::uint64_t>> Log2Histogram::buckets() const {
  std::vector<std::pair<double, std::uint64_t>> out;
  for (int k = 0; k < kBuckets; ++k) {
    const std::uint64_t c = counts_[static_cast<std::size_t>(k)];
    if (c != 0) out.emplace_back(upper_bound(k), c);
  }
  return out;
}

void StatsCollector::record_batch(index_t rows, std::uint64_t edges,
                                  double forward_seconds) {
  std::scoped_lock lock(mutex_);
  ++batches_;
  rows_ += rows;
  edges_ += edges;
  busy_seconds_ += forward_seconds;
  batch_rows_.record(static_cast<double>(rows));
}

void StatsCollector::record_request(double queue_seconds,
                                    double total_seconds, bool error) {
  std::scoped_lock lock(mutex_);
  ++requests_;
  if (error) ++errors_;
  queue_wait_.record(queue_seconds);
  e2e_.record(total_seconds);
}

void StatsCollector::record_shed(double queue_seconds, double total_seconds,
                                 bool expired) {
  std::scoped_lock lock(mutex_);
  ++requests_;
  ++errors_;
  if (expired) {
    ++expired_;
  } else {
    ++shed_;
  }
  queue_wait_.record(queue_seconds);
  e2e_.record(total_seconds);
}

void ServeStats::finalize() {
  edges_per_busy_second =
      busy_seconds > 0.0 ? static_cast<double>(edges) / busy_seconds : 0.0;
  mean_batch_rows = batch_rows_hist.mean();
  queue_wait_p50 = queue_wait_hist.percentile(0.50);
  queue_wait_p95 = queue_wait_hist.percentile(0.95);
  queue_wait_p99 = queue_wait_hist.percentile(0.99);
  queue_wait_max = queue_wait_hist.max();
  e2e_p50 = e2e_hist.percentile(0.50);
  e2e_p95 = e2e_hist.percentile(0.95);
  e2e_p99 = e2e_hist.percentile(0.99);
  e2e_max = e2e_hist.max();
  batch_rows_histogram = batch_rows_hist.buckets();
}

void ServeStats::merge(const ServeStats& other) {
  requests += other.requests;
  rows += other.rows;
  batches += other.batches;
  edges += other.edges;
  errors += other.errors;
  shed += other.shed;
  expired += other.expired;
  busy_seconds += other.busy_seconds;
  batch_rows_hist.merge(other.batch_rows_hist);
  queue_wait_hist.merge(other.queue_wait_hist);
  e2e_hist.merge(other.e2e_hist);
  finalize();
}

ServeStats StatsCollector::snapshot() const {
  std::scoped_lock lock(mutex_);
  ServeStats s;
  s.requests = requests_;
  s.rows = rows_;
  s.batches = batches_;
  s.edges = edges_;
  s.errors = errors_;
  s.shed = shed_;
  s.expired = expired_;
  s.busy_seconds = busy_seconds_;
  s.batch_rows_hist = batch_rows_;
  s.queue_wait_hist = queue_wait_;
  s.e2e_hist = e2e_;
  s.finalize();
  return s;
}

std::string to_string(const ServeStats& s) {
  char line[192];
  std::string out;
  std::snprintf(line, sizeof(line),
                "requests %llu (errors %llu, shed %llu, expired %llu), "
                "rows %llu, batches %llu, mean batch %.1f rows\n",
                static_cast<unsigned long long>(s.requests),
                static_cast<unsigned long long>(s.errors),
                static_cast<unsigned long long>(s.shed),
                static_cast<unsigned long long>(s.expired),
                static_cast<unsigned long long>(s.rows),
                static_cast<unsigned long long>(s.batches),
                s.mean_batch_rows);
  out += line;
  std::snprintf(line, sizeof(line),
                "edges %llu in %.3fs busy -> %.3e edges/s\n",
                static_cast<unsigned long long>(s.edges), s.busy_seconds,
                s.edges_per_busy_second);
  out += line;
  std::snprintf(line, sizeof(line),
                "queue wait p50/p95/p99/max: %.0f/%.0f/%.0f/%.0f us; "
                "e2e p50/p95/p99/max: %.0f/%.0f/%.0f/%.0f us\n",
                s.queue_wait_p50 * 1e6, s.queue_wait_p95 * 1e6,
                s.queue_wait_p99 * 1e6, s.queue_wait_max * 1e6,
                s.e2e_p50 * 1e6, s.e2e_p95 * 1e6,
                s.e2e_p99 * 1e6, s.e2e_max * 1e6);
  out += line;
  out += "batch rows histogram (<=bound: count):";
  for (const auto& [bound, count] : s.batch_rows_histogram) {
    std::snprintf(line, sizeof(line), " <=%g:%llu", bound,
                  static_cast<unsigned long long>(count));
    out += line;
  }
  out += '\n';
  return out;
}

}  // namespace radix::serve

// Front-end vocabulary of the serving layer: what a client submits and
// what it gets back, independent of the backend that serves it.
//
// PR 3/4 grew Engine a six-way submit overload matrix (callback/future x
// blocking/fail-fast/bounded-wait, plus owned vs. borrowed buffers) that
// every new serving target -- the sharded router, a future network
// front-end -- would have had to duplicate.  This header collapses the
// matrix into data:
//
//   * InferenceRequest -- WHAT to run: a model handle, a row count and
//     the input rows, either borrowed (a std::span the caller keeps
//     alive until completion) or owned (a vector the request carries).
//     The borrowed/owned factories make the lifetime contract part of
//     the type instead of a comment.
//   * SubmitOptions    -- HOW to run it: the admission mode (block on a
//     full queue / fail fast / wait a bounded time) and the completion
//     style (a future, or a zero-copy callback when `done` is set).
//   * SubmitResult     -- what came back: whether the request was
//     admitted, and for future-completion submissions the future that
//     will carry the output rows.
//
// Every backend exposes exactly one entry point over these types
// (Backend::submit in serve/backend.hpp); there are no per-mode
// overloads anywhere in the serving API.
#pragma once

#include <chrono>
#include <cstddef>
#include <exception>
#include <functional>
#include <future>
#include <span>
#include <utility>
#include <vector>

#include "serve/trace.hpp"
#include "sparse/types.hpp"
#include "support/error.hpp"

namespace radix::serve {

/// Identifies a registered model within one Backend.
using ModelId = std::size_t;

// RequestId -- the process-wide monotonically increasing identity every
// admitted request carries through timing, completion and the trace
// timeline -- lives in serve/trace.hpp with the tracing machinery.

/// Completion error of a request orphaned by a backend abort: the
/// serving shard went down (Engine::abort) after admitting the request
/// but before a worker claimed it.  The request was never executed, so
/// resubmitting it elsewhere is always safe -- outputs are deterministic
/// functions of the input, making retries idempotent by construction.
/// ShardRouter's failover path catches exactly this type to resubmit on
/// a healthy shard; any other serving error is deterministic caller- or
/// model-side failure and is delivered as-is.
class AbortedError : public Error {
 public:
  explicit AbortedError(const std::string& what)
      : Error("aborted: " + what) {}
};

/// Completion error of a request the backend shed instead of serving:
/// either its end-to-end deadline (SubmitOptions::deadline) had passed
/// by the time a worker claimed it, or it was dropped under queue
/// pressure by the priority-aware overload policy (lowest QoS class
/// first; see serve/batcher.hpp).  Unlike AbortedError this is a
/// terminal verdict -- the deadline budget is spent, so a failover
/// layer delivers it rather than retrying.
class DeadlineExceededError : public Error {
 public:
  explicit DeadlineExceededError(const std::string& what)
      : Error("deadline exceeded: " + what) {}
};

/// Per-request timing delivered to completion callbacks and recorded by
/// the stats surface.
struct RequestTiming {
  double queue_seconds = 0.0;  ///< submit -> claimed by a worker
  double total_seconds = 0.0;  ///< submit -> completion delivered
  index_t batch_rows = 0;      ///< rows of the coalesced batch served in
  /// The request's trace identity (also SubmitResult::request_id()):
  /// correlates this completion with its drained trace timeline.  0 only
  /// on paths that never entered submit (e.g. default-constructed).
  RequestId request_id = 0;
};

/// Completion callback.  On success `output` holds the request's rows of
/// final activations ([rows x output_width], row-major) and `error` is
/// null; the span aliases worker-owned memory and is only valid during
/// the call -- copy it out to keep it.  On failure `output` is empty and
/// `error` carries the exception.  Callbacks run on the worker thread
/// that served the batch and must not block it for long; an exception
/// escaping the callback is swallowed by the worker (it must never take
/// down the pool), so handle errors inside.
using DoneFn = std::function<void(std::span<const float> output,
                                  const RequestTiming& timing,
                                  std::exception_ptr error)>;

/// One inference request: `rows` rows of model-input features for
/// `model`, row-major in `input`.  Construct through the factories --
/// they encode the input-lifetime contract in the type:
///
///   * borrowed(): `input` views caller-owned memory that MUST stay
///     alive until the request completes (future resolved / callback
///     run).  Zero-copy on the submit path.
///   * owned(): the request carries its own storage; the caller may
///     discard its buffer the moment submit returns.
struct InferenceRequest {
  ModelId model = 0;
  index_t rows = 0;
  /// The input rows ([rows x input_width]); views `storage` when owned.
  std::span<const float> input{};
  /// Non-empty exactly when the request owns its input.  Vector moves
  /// keep the heap buffer stable, so `input` stays valid as the request
  /// is moved through the submit path.
  std::vector<float> storage{};

  InferenceRequest() = default;
  InferenceRequest(InferenceRequest&&) = default;
  InferenceRequest& operator=(InferenceRequest&&) = default;
  // Copying an owned request must rebind `input` to the copy's own
  // storage -- the default memberwise copy would leave it viewing the
  // source's buffer, dangling once the source dies.
  InferenceRequest(const InferenceRequest& other) { *this = other; }
  InferenceRequest& operator=(const InferenceRequest& other) {
    model = other.model;
    rows = other.rows;
    storage = other.storage;
    input = storage.empty() ? other.input : std::span<const float>(storage);
    return *this;
  }

  /// Caller keeps `input` alive until completion.
  static InferenceRequest borrowed(ModelId model, std::span<const float> input,
                                   index_t rows) {
    InferenceRequest r;
    r.model = model;
    r.rows = rows;
    r.input = input;
    return r;
  }

  /// The request takes ownership of `input`.
  static InferenceRequest owned(ModelId model, std::vector<float> input,
                                index_t rows) {
    InferenceRequest r;
    r.model = model;
    r.rows = rows;
    r.storage = std::move(input);
    r.input = std::span<const float>(r.storage);
    return r;
  }
};

/// What to do when the model's queue is full at submit time.
enum class Admission : std::uint8_t {
  kBlock = 0,       ///< wait for space (backpressure); rejected only when
                    ///< the backend is shut down
  kFailFast = 1,    ///< never wait: rejected immediately when full
  kBoundedWait = 2, ///< wait up to SubmitOptions::timeout, then rejected
};

/// How one submit call is admitted and completed.  Defaults reproduce
/// the common case: block for queue space, deliver through a future.
struct SubmitOptions {
  Admission admission = Admission::kBlock;
  /// Admission::kBoundedWait budget; ignored by the other modes.
  /// timeout <= 0 behaves like kFailFast.
  std::chrono::microseconds timeout{0};
  /// End-to-end deadline budget, measured from submit entry -- distinct
  /// from `timeout`, which only bounds the admission wait.  0 means no
  /// deadline.  An admitted request whose deadline passes before a
  /// worker claims it is shed: it never runs forward and completes with
  /// DeadlineExceededError (still exactly one completion).  A negative
  /// value means "already expired" -- used by relays carrying a spent
  /// remaining budget; such a request is admitted and shed at claim.
  std::chrono::microseconds deadline{0};
  /// When set, completion is the callback (zero-copy output span, worker
  /// thread) and SubmitResult carries no future; when empty, completion
  /// is SubmitResult::take_future().
  DoneFn done{};
  /// Trace identity to serve the request under.  0 (the default) makes
  /// the backend assign a fresh next_request_id(); a relaying layer
  /// (ShardRouter's failover capsule) passes the id it already
  /// assigned, so every hop of one request records under one id.
  RequestId trace_id = 0;
};

/// Outcome of Backend::submit.  `admitted()` is the admission verdict:
/// false means the request was NOT accepted (full queue under
/// kFailFast/kBoundedWait, or the backend is shut down) and will never
/// complete -- the callback is not invoked, borrowed input is untouched.
/// For admitted future-completion submissions take_future() yields the
/// output rows ([rows x output_width]) or rethrows the serving error.
class SubmitResult {
 public:
  SubmitResult() = default;  // rejected

  bool admitted() const noexcept { return admitted_; }
  explicit operator bool() const noexcept { return admitted_; }

  /// The admitted request's trace identity: matches the
  /// RequestTiming::request_id its completion will carry and the id its
  /// trace timeline records under.  0 for rejections.
  RequestId request_id() const noexcept { return request_id_; }

  /// True until take_future() is called on an admitted future-completion
  /// result; always false for callback submissions and rejections.
  bool has_future() const noexcept { return future_.valid(); }

  /// The pending output; callable exactly once, only when has_future().
  std::future<std::vector<float>> take_future() {
    RADIX_REQUIRE(future_.valid(),
                  "SubmitResult: no future (rejected, callback-completed, "
                  "or already taken)");
    return std::move(future_);
  }

  /// Convenience: take_future().get().
  std::vector<float> get() { return take_future().get(); }

  static SubmitResult rejected() { return {}; }

  static SubmitResult admitted_callback(RequestId id) {
    SubmitResult r;
    r.admitted_ = true;
    r.request_id_ = id;
    return r;
  }

  static SubmitResult admitted_future(std::future<std::vector<float>> f,
                                      RequestId id) {
    SubmitResult r;
    r.admitted_ = true;
    r.request_id_ = id;
    r.future_ = std::move(f);
    return r;
  }

 private:
  bool admitted_ = false;
  RequestId request_id_ = 0;
  std::future<std::vector<float>> future_{};
};

}  // namespace radix::serve

#include "net/remote_backend.hpp"

#include <sys/socket.h>

#include <future>

namespace radix::net {

using serve::SubmitResult;

/// One outstanding correlation: either an RPC waiting for its response
/// frame, or a submit -- which waits for its kSubmitAck here AND owns
/// the completion plumbing its kResult (possibly arriving first) is
/// delivered through.  All fields are guarded by RemoteBackend::mutex_
/// except `done`/`promise`, which are write-once before the frame is
/// sent and only read by the delivering thread afterwards.
struct RemoteBackend::Pending {
  bool is_submit = false;
  std::optional<Frame> resp;  // ack / RPC response / kError
  bool failed = false;
  std::string fail_reason;
  bool ack_handled = false;
  bool admitted = false;
  bool result_delivered = false;
  serve::DoneFn done;  // callback completion; else promise below
  std::shared_ptr<std::promise<std::vector<float>>> promise;
};

namespace {

WireError decode_error_body(const Frame& frame) {
  WireReader r(frame.body);
  WireError e;
  const std::uint8_t kind = r.u8();
  if (kind > static_cast<std::uint8_t>(WireErrorKind::kDeadline)) {
    throw IoError("wire: bad error kind");
  }
  e.kind = static_cast<WireErrorKind>(kind);
  e.message = r.str();
  return e;
}

}  // namespace

RemoteBackend::RemoteBackend(std::uint16_t port)
    : fd_(connect_tcp(port)) {
  reader_ = std::thread([this] { reader_loop(); });
}

RemoteBackend::~RemoteBackend() { shutdown(); }

// --- Reader / demux --------------------------------------------------------

void RemoteBackend::reader_loop() {
  std::string reason = "connection closed";
  try {
    for (;;) {
      auto frame = recv_frame(fd_);
      if (!frame) break;  // clean EOF
      if (frame->type == MsgType::kResult) {
        std::shared_ptr<Pending> entry;
        {
          std::scoped_lock lock(mutex_);
          auto it = pending_.find(frame->correlation);
          if (it != pending_.end() && it->second->is_submit &&
              !it->second->result_delivered) {
            entry = it->second;
          }
        }
        if (!entry) continue;  // un-correlated result; drop
        deliver_result(entry, *frame);  // user code: never under mutex_
        {
          std::scoped_lock lock(mutex_);
          entry->result_delivered = true;
          if (entry->ack_handled) pending_.erase(frame->correlation);
          cv_.notify_all();
        }
        continue;
      }
      std::scoped_lock lock(mutex_);
      auto it = pending_.find(frame->correlation);
      if (it != pending_.end()) {
        it->second->resp = std::move(*frame);
        cv_.notify_all();
      }
    }
  } catch (const Error& e) {
    reason = e.what();
  } catch (const std::exception& e) {
    reason = e.what();
  }
  fail_all(reason);
}

void RemoteBackend::deliver_result(std::shared_ptr<Pending> entry,
                                   const Frame& frame) {
  WireReader r(frame.body);
  const std::uint8_t kind = r.u8();
  const std::string message = r.str();
  serve::RequestTiming timing;
  timing.queue_seconds = r.f64();
  timing.total_seconds = r.f64();
  timing.batch_rows = static_cast<index_t>(r.u32());
  timing.request_id = r.u64();
  std::vector<float> output = r.floats();

  std::exception_ptr error;
  if (kind != static_cast<std::uint8_t>(WireErrorKind::kNone)) {
    WireError e;
    e.kind = kind > static_cast<std::uint8_t>(WireErrorKind::kDeadline)
                 ? WireErrorKind::kGeneric
                 : static_cast<WireErrorKind>(kind);
    e.message = message;
    try {
      throw_wire_error(e);
    } catch (...) {
      error = std::current_exception();
    }
  }
  if (entry->done) {
    // The DoneFn contract: exceptions escaping the callback are the
    // caller's bug; swallow them like the in-process workers do.
    try {
      entry->done(error ? std::span<const float>{}
                        : std::span<const float>(output),
                  timing, error);
    } catch (...) {
    }
    return;
  }
  if (error) {
    entry->promise->set_exception(error);
  } else {
    entry->promise->set_value(std::move(output));
  }
}

void RemoteBackend::fail_all(const std::string& reason) {
  std::vector<std::shared_ptr<Pending>> to_fail;
  {
    std::scoped_lock lock(mutex_);
    connected_ = false;
    for (auto it = pending_.begin(); it != pending_.end();) {
      Pending& e = *it->second;
      e.failed = true;
      e.fail_reason = reason;
      if (e.is_submit && e.ack_handled && e.admitted &&
          !e.result_delivered) {
        // Admitted and in flight when the socket died: the exactly-once
        // completion promise is honored with an IoError (NOT
        // AbortedError -- the server may well have executed it, so a
        // failover layer must not blind-retry; see the file comment).
        e.result_delivered = true;
        to_fail.push_back(it->second);
      }
      // Entries with a parked waiter (ack or RPC) are erased by that
      // waiter when it wakes to `failed`; fully-acked submits have no
      // waiter left, so reap them here.
      if (e.ack_handled) {
        it = pending_.erase(it);
      } else {
        ++it;
      }
    }
    cv_.notify_all();
  }
  for (auto& entry : to_fail) {
    const auto error = std::make_exception_ptr(
        IoError("radix-served connection lost: " + reason));
    serve::RequestTiming timing;
    if (entry->done) {
      try {
        entry->done({}, timing, error);
      } catch (...) {
      }
    } else {
      entry->promise->set_exception(error);
    }
  }
}

// --- Request plumbing ------------------------------------------------------

Frame RemoteBackend::rpc(MsgType type, std::span<const std::uint8_t> body,
                         MsgType expected) const {
  auto entry = std::make_shared<Pending>();
  std::uint64_t correlation;
  {
    std::scoped_lock lock(mutex_);
    if (!connected_) throw IoError("radix-served connection lost");
    correlation = next_correlation_++;
    pending_.emplace(correlation, entry);
  }
  try {
    std::scoped_lock lock(send_mutex_);
    write_all(fd_, encode_frame(type, correlation, body));
  } catch (...) {
    std::scoped_lock lock(mutex_);
    pending_.erase(correlation);
    throw;
  }
  std::unique_lock lock(mutex_);
  cv_.wait(lock, [&] { return entry->resp.has_value() || entry->failed; });
  pending_.erase(correlation);
  if (entry->failed) {
    throw IoError("radix-served connection lost: " + entry->fail_reason);
  }
  Frame resp = std::move(*entry->resp);
  lock.unlock();
  if (resp.type == MsgType::kError) throw_wire_error(decode_error_body(resp));
  if (resp.type != expected) throw IoError("wire: unexpected response type");
  return resp;
}

SubmitResult RemoteBackend::submit(serve::InferenceRequest req,
                                   serve::SubmitOptions opts) {
  std::vector<std::uint8_t> body;
  WireWriter w(body);
  w.u64(req.model);
  w.u32(static_cast<std::uint32_t>(req.rows));
  w.u8(static_cast<std::uint8_t>(opts.admission));
  w.i64(opts.timeout.count());
  w.i64(opts.deadline.count());
  w.u64(opts.trace_id);
  w.floats(req.input);  // copies the rows into the frame

  auto entry = std::make_shared<Pending>();
  entry->is_submit = true;
  entry->done = std::move(opts.done);
  std::future<std::vector<float>> fut;
  if (!entry->done) {
    entry->promise = std::make_shared<std::promise<std::vector<float>>>();
    fut = entry->promise->get_future();
  }

  std::uint64_t correlation;
  {
    std::scoped_lock lock(mutex_);
    if (!accepting_ || !connected_) return SubmitResult::rejected();
    correlation = next_correlation_++;
    pending_.emplace(correlation, entry);
  }
  try {
    std::scoped_lock lock(send_mutex_);
    write_all(fd_, encode_frame(MsgType::kSubmit, correlation, body));
  } catch (const Error&) {
    // Nothing reached the server: rejection as a value, no side
    // effects -- matching the Backend admission contract.
    std::scoped_lock lock(mutex_);
    pending_.erase(correlation);
    return SubmitResult::rejected();
  }

  std::unique_lock lock(mutex_);
  cv_.wait(lock, [&] { return entry->resp.has_value() || entry->failed; });
  if (entry->failed) {
    pending_.erase(correlation);
    cv_.notify_all();
    throw IoError("radix-served connection lost: " + entry->fail_reason);
  }
  Frame resp = std::move(*entry->resp);
  entry->resp.reset();
  if (resp.type == MsgType::kError) {
    pending_.erase(correlation);
    cv_.notify_all();
    lock.unlock();
    throw_wire_error(decode_error_body(resp));
  }
  if (resp.type != MsgType::kSubmitAck) {
    pending_.erase(correlation);
    cv_.notify_all();
    lock.unlock();
    throw IoError("wire: unexpected ack type");
  }
  WireReader r(resp.body);
  const bool admitted = r.u8() != 0;
  const serve::RequestId id = r.u64();
  entry->ack_handled = true;
  entry->admitted = admitted;
  if (!admitted || entry->result_delivered) pending_.erase(correlation);
  cv_.notify_all();
  lock.unlock();

  if (!admitted) return SubmitResult::rejected();
  if (entry->done) return SubmitResult::admitted_callback(id);
  return SubmitResult::admitted_future(std::move(fut), id);
}

// --- Backend observers -----------------------------------------------------

serve::ServeStats RemoteBackend::stats(serve::ModelId model) const {
  std::vector<std::uint8_t> body;
  WireWriter w(body);
  w.u64(model);
  const Frame resp = rpc(MsgType::kStatsReq, body, MsgType::kStatsResp);
  WireReader r(resp.body);
  serve::ServeStats s = decode_stats(r);
  r.expect_end();
  return s;
}

std::size_t RemoteBackend::pending(serve::ModelId model) const {
  std::vector<std::uint8_t> body;
  WireWriter w(body);
  w.u64(model);
  const Frame resp = rpc(MsgType::kPendingReq, body, MsgType::kPendingResp);
  WireReader r(resp.body);
  const auto n = static_cast<std::size_t>(r.u64());
  r.expect_end();
  return n;
}

std::size_t RemoteBackend::num_models() const {
  const Frame resp = rpc(MsgType::kNumModelsReq, {}, MsgType::kNumModelsResp);
  WireReader r(resp.body);
  const auto n = static_cast<std::size_t>(r.u64());
  r.expect_end();
  return n;
}

std::optional<serve::ModelId> RemoteBackend::find_model(
    std::string_view name) const {
  std::vector<std::uint8_t> body;
  WireWriter w(body);
  w.str(name);
  const Frame resp =
      rpc(MsgType::kFindModelReq, body, MsgType::kFindModelResp);
  WireReader r(resp.body);
  const bool found = r.u8() != 0;
  const auto id = static_cast<serve::ModelId>(r.u64());
  r.expect_end();
  if (!found) return std::nullopt;
  return id;
}

bool RemoteBackend::accepting() const {
  std::scoped_lock lock(mutex_);
  return accepting_ && connected_;
}

void RemoteBackend::shutdown() {
  {
    std::unique_lock lock(mutex_);
    accepting_ = false;
    if (shut_down_) return;
    shut_down_ = true;
    // Drain: every admitted request's completion is still delivered by
    // the reader (or failed by fail_all if the connection dies) --
    // admitted-implies-completed survives a local shutdown.
    cv_.wait(lock, [&] {
      if (!connected_) return true;
      for (const auto& [corr, entry] : pending_) {
        if (entry->is_submit) return false;
      }
      return true;
    });
  }
  if (fd_.valid()) (void)::shutdown(fd_.get(), SHUT_RDWR);
  if (reader_.joinable()) reader_.join();
  fd_.reset();
}

// --- Admin surface ---------------------------------------------------------

void RemoteBackend::ping() const {
  (void)rpc(MsgType::kPing, {}, MsgType::kPong);
}

std::vector<WireModelInfo> RemoteBackend::list_models() const {
  const Frame resp =
      rpc(MsgType::kListModelsReq, {}, MsgType::kListModelsResp);
  WireReader r(resp.body);
  const std::uint32_t n = r.u32();
  std::vector<WireModelInfo> models;
  models.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    models.push_back(decode_model_info(r));
  }
  r.expect_end();
  return models;
}

serve::ServeStats RemoteBackend::class_stats(serve::Priority p) const {
  std::vector<std::uint8_t> body;
  WireWriter w(body);
  w.u8(static_cast<std::uint8_t>(p));
  const Frame resp =
      rpc(MsgType::kClassStatsReq, body, MsgType::kClassStatsResp);
  WireReader r(resp.body);
  serve::ServeStats s = decode_stats(r);
  r.expect_end();
  return s;
}

std::string RemoteBackend::metrics_text() const {
  const Frame resp = rpc(MsgType::kMetricsReq, {}, MsgType::kMetricsResp);
  WireReader r(resp.body);
  std::string text = r.str();
  r.expect_end();
  return text;
}

std::uint64_t RemoteBackend::save_model(serve::ModelId id,
                                        const std::string& path) const {
  std::vector<std::uint8_t> body;
  WireWriter w(body);
  w.u64(id);
  w.str(path);
  const Frame resp = rpc(MsgType::kSaveModelReq, body, MsgType::kSaveModelResp);
  WireReader r(resp.body);
  const std::uint64_t bytes = r.u64();
  r.expect_end();
  return bytes;
}

serve::ModelId RemoteBackend::load_model(const std::string& path,
                                         const std::string& name) const {
  std::vector<std::uint8_t> body;
  WireWriter w(body);
  w.str(path);
  w.str(name);
  const Frame resp = rpc(MsgType::kLoadModelReq, body, MsgType::kLoadModelResp);
  WireReader r(resp.body);
  const auto id = static_cast<serve::ModelId>(r.u64());
  r.expect_end();
  return id;
}

std::vector<serve::ShardHealth> RemoteBackend::shard_ctl(
    ShardVerb verb, std::size_t index) const {
  std::vector<std::uint8_t> body;
  WireWriter w(body);
  w.u8(static_cast<std::uint8_t>(verb));
  w.u64(index);
  const Frame resp = rpc(MsgType::kShardCtlReq, body, MsgType::kShardCtlResp);
  WireReader r(resp.body);
  const std::uint32_t n = r.u32();
  std::vector<serve::ShardHealth> health;
  health.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint8_t h = r.u8();
    if (h > static_cast<std::uint8_t>(serve::ShardHealth::kDown)) {
      throw IoError("wire: bad shard health");
    }
    health.push_back(static_cast<serve::ShardHealth>(h));
  }
  r.expect_end();
  return health;
}

void RemoteBackend::server_shutdown() const {
  (void)rpc(MsgType::kShutdownReq, {}, MsgType::kShutdownResp);
}

}  // namespace radix::net

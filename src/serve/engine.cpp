#include "serve/engine.hpp"

#include <exception>
#include <utility>

#include "support/error.hpp"

namespace radix::serve {

namespace {

double seconds_between(std::chrono::steady_clock::time_point a,
                       std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

// Completion adapter for future-completion submissions.
DoneFn promise_done(
    std::shared_ptr<std::promise<std::vector<float>>> promise) {
  return [promise = std::move(promise)](std::span<const float> y,
                                        const RequestTiming&,
                                        std::exception_ptr err) {
    if (err) {
      promise->set_exception(err);
    } else {
      promise->set_value(std::vector<float>(y.begin(), y.end()));
    }
  };
}

BatcherOptions batcher_options(const EngineOptions& o) {
  BatcherOptions b;
  b.queue_capacity = o.queue_capacity;
  b.max_batch_rows = o.max_batch_rows;
  b.max_delay = o.max_delay;
  b.starvation_bound = o.starvation_bound;
  b.clock = o.clock;
  return b;
}

}  // namespace

Engine::Engine(EngineOptions options)
    : options_(options), batcher_(batcher_options(options)) {
  RADIX_REQUIRE(options_.max_batch_rows > 0,
                "Engine: max_batch_rows must be > 0");
  worker_count_ =
      options_.workers == 0 ? default_worker_count() : options_.workers;
  try {
    for (unsigned i = 0; i < worker_count_; ++i) {
      workers_.spawn([this, i] { worker_loop(i); });
    }
  } catch (...) {
    // A failed spawn (e.g. thread-resource exhaustion) unwinds the
    // constructor, so ~Engine will not run: close the batcher here so
    // the already-started workers exit and ~ThreadGroup's joins return
    // instead of deadlocking.
    batcher_.close();
    throw;
  }
}

Engine::~Engine() { shutdown(); }

QosPolicy Engine::resolve_qos(QosPolicy qos) const {
  // Per-model value > class override > engine default; the batcher
  // resolves the final (engine-default) layer itself.  Priority is a
  // uint8 enum class (any raw value converts legally) and indexes the
  // override table, so gate it before the lookup.
  RADIX_REQUIRE(static_cast<std::size_t>(qos.priority) < kNumPriorities,
                "Engine: invalid priority class");
  const ClassPolicy& cls =
      options_.class_policy[static_cast<std::size_t>(qos.priority)];
  if (qos.max_delay < std::chrono::microseconds::zero()) {
    qos.max_delay = cls.max_delay;  // may still be unset: batcher default
  }
  if (qos.max_batch_rows == 0) qos.max_batch_rows = cls.max_batch_rows;
  return qos;
}

ModelId Engine::add_model(std::shared_ptr<const infer::SparseDnn> model,
                          std::string name, QosPolicy qos) {
  RADIX_REQUIRE(model != nullptr, "Engine: model must not be null");
  auto st = std::make_shared<ModelState>();
  st->dnn = std::move(model);
  st->input_width = st->dnn->input_width();
  st->output_width = st->dnn->output_width();
  if (options_.prewarm) {
    // Builds the shared transposed-layer cache once, up front, so the
    // first served batch does not pay one-time construction latency.
    // Worker workspaces stay lazy: their panels grow once per worker on
    // first contact (growth-only, cheap next to a transpose build).
    st->dnn->prewarm();
  }
  // Registry push and batcher queue creation must be one atomic step:
  // concurrent add_model calls interleaving between them would hand out
  // mismatched ids and route one model's traffic to another's queue.
  // Lock order is models_mutex_ -> batcher monitor; no other path nests
  // the two.
  std::scoped_lock lock(models_mutex_);
  st->name = detail::resolve_model_name(
      std::move(name), models_.size(),
      [&](const std::string& n) {
        for (const auto& existing : models_) {
          if (existing->name == n) return true;
        }
        return false;
      },
      "Engine");
  // Batcher slot first: its validation (priority, weight, closed) can
  // throw, and throwing *after* the registry push would leave the two
  // permanently desynced.  The reverse failure (push_back throwing
  // after the slot exists) only leaves an unreachable empty queue,
  // which the scheduler skips.
  const ModelId id = models_.size();
  const ModelId batcher_id = batcher_.add_model(resolve_qos(qos));
  RADIX_ASSERT(batcher_id == id,
               "Engine: model registry and batcher out of sync");
  models_.push_back(st);
  return id;
}

std::size_t Engine::num_models() const {
  std::scoped_lock lock(models_mutex_);
  return models_.size();
}

std::optional<ModelId> Engine::find_model(std::string_view name) const {
  std::scoped_lock lock(models_mutex_);
  for (ModelId id = 0; id < models_.size(); ++id) {
    if (models_[id]->name == name) return id;
  }
  return std::nullopt;
}

unsigned Engine::num_workers() const noexcept { return worker_count_; }

std::shared_ptr<Engine::ModelState> Engine::state(ModelId id) const {
  std::scoped_lock lock(models_mutex_);
  RADIX_REQUIRE(id < models_.size(), "Engine: unknown model id");
  return models_[id];
}

const infer::SparseDnn& Engine::model(ModelId id) const {
  return *state(id)->dnn;
}

const std::string& Engine::model_name(ModelId id) const {
  return state(id)->name;
}

QosPolicy Engine::model_policy(ModelId id) const {
  (void)state(id);  // validates the id
  return batcher_.policy(id);
}

SubmitResult Engine::submit(InferenceRequest req, SubmitOptions opts) {
  auto st = state(req.model);  // validates the id
  RADIX_REQUIRE(req.rows == 0 || req.input.data() != nullptr,
                "Engine::submit: null input with rows > 0");
  RADIX_REQUIRE_DIM(
      req.input.size() ==
          static_cast<std::size_t>(req.rows) * st->input_width,
      "Engine::submit: input size != rows * input_width");

  const bool callback = static_cast<bool>(opts.done);
  if (req.rows == 0) {
    // Nothing to batch: complete inline.  Admission still applies --
    // after shutdown the engine serves nothing, not even empties.
    if (!accepting()) return SubmitResult::rejected();
    if (callback) {
      opts.done({}, RequestTiming{}, nullptr);
      return SubmitResult::admitted_callback();
    }
    std::promise<std::vector<float>> p;
    p.set_value({});
    return SubmitResult::admitted_future(p.get_future());
  }

  Request r;
  r.rows = req.rows;
  std::future<std::vector<float>> future;
  if (callback) {
    r.done = std::move(opts.done);
  } else {
    auto promise = std::make_shared<std::promise<std::vector<float>>>();
    future = promise->get_future();
    r.done = promise_done(std::move(promise));
  }
  if (!req.storage.empty()) {
    r.owned = std::move(req.storage);
    r.input = r.owned.data();
  } else {
    r.input = req.input.data();
  }

  bool admitted = false;
  switch (opts.admission) {
    case Admission::kBlock:
      admitted = batcher_.submit(req.model, std::move(r));
      break;
    case Admission::kFailFast:
      admitted = batcher_.try_submit(req.model, std::move(r));
      break;
    case Admission::kBoundedWait:
      admitted = batcher_.submit_for(req.model, std::move(r), opts.timeout);
      break;
  }
  if (!admitted) return SubmitResult::rejected();
  return callback ? SubmitResult::admitted_callback()
                  : SubmitResult::admitted_future(std::move(future));
}

ServeStats Engine::stats(ModelId id) const { return state(id)->stats.snapshot(); }

ServeStats Engine::class_stats(Priority p) const {
  RADIX_REQUIRE(static_cast<std::size_t>(p) < kNumPriorities,
                "Engine: invalid priority class");
  return class_stats_[static_cast<std::size_t>(p)].snapshot();
}

std::size_t Engine::pending(ModelId id) const {
  (void)state(id);  // validates the id
  return batcher_.pending(id);
}

std::size_t Engine::pending_probe(ModelId id) const {
  return batcher_.pending(id);  // validates id under the monitor alone
}

void Engine::shutdown() {
  std::call_once(shutdown_once_, [this] {
    batcher_.close();     // refuse new work; queued requests stay claimable
    workers_.join_all();  // workers exit once every queue has drained
  });
}

bool Engine::accepting() const { return !batcher_.closed(); }

void Engine::worker_loop(std::size_t worker_index) {
  (void)worker_index;  // worker identity only matters for debugging now
  infer::InferenceWorkspace workspace;
  BatchAssembly assembly;
  MicroBatcher::Batch batch;
  ClockSource& clock = batcher_.clock();

  while (batcher_.next(batch)) {
    const auto st = state(batch.model);
    StatsCollector& cls =
        class_stats_[static_cast<std::size_t>(batch.priority)];
    const auto claimed = clock.now();

    const float* input = assembly.assemble(batch, st->input_width);
    infer::InferenceStats fstats;
    std::span<const float> y;
    std::exception_ptr error;
    try {
      y = st->dnn->forward(input, batch.rows, workspace, &fstats);
    } catch (...) {
      error = std::current_exception();
    }
    const auto finished = clock.now();

    // Record stats BEFORE delivering completions: a caller that wakes
    // on its future and immediately reads stats() must already see its
    // own request counted.  Batches and requests land in the model's
    // collector and in its service class's aggregate.
    if (!error) {
      st->stats.record_batch(batch.rows, fstats.edges_processed,
                             fstats.wall_seconds);
      cls.record_batch(batch.rows, fstats.edges_processed,
                       fstats.wall_seconds);
    }
    // Latencies anchor at `submitted` (submit entry), not `enqueued`
    // (admission), so time spent blocked on a full queue is reported.
    for (const Request& r : batch.requests) {
      const double qs = seconds_between(r.submitted, claimed);
      const double ts = seconds_between(r.submitted, finished);
      st->stats.record_request(qs, ts, error != nullptr);
      cls.record_request(qs, ts, error != nullptr);
    }

    // Scatter per-request output rows back to callers: requests were
    // concatenated in FIFO order, so request i's rows are a contiguous
    // sub-span of the batch output.
    std::size_t row0 = 0;
    for (Request& r : batch.requests) {
      RequestTiming timing;
      timing.queue_seconds = seconds_between(r.submitted, claimed);
      timing.total_seconds = seconds_between(r.submitted, finished);
      timing.batch_rows = batch.rows;
      std::span<const float> rows_out;
      if (!error) {
        rows_out = y.subspan(row0 * st->output_width,
                             static_cast<std::size_t>(r.rows) *
                                 st->output_width);
      }
      if (r.done) {
        try {
          r.done(rows_out, timing, error);
        } catch (...) {
          // A throwing completion callback must not take down the
          // worker (and with it every other in-flight request); the
          // DoneFn contract documents that escaping exceptions are
          // swallowed here.
        }
      }
      row0 += r.rows;
    }
  }
}

}  // namespace radix::serve

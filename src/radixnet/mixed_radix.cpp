#include "radixnet/mixed_radix.hpp"

#include <limits>
#include <sstream>

#include "support/error.hpp"

namespace radix {

MixedRadix::MixedRadix(std::vector<std::uint32_t> radices)
    : radices_(std::move(radices)) {
  RADIX_REQUIRE(!radices_.empty(),
                "MixedRadix: need at least one radix");
  for (std::uint32_t r : radices_) {
    RADIX_REQUIRE(r >= 2, "MixedRadix: every radix must be >= 2");
    RADIX_REQUIRE(product_ <= std::numeric_limits<std::uint64_t>::max() / r,
                  "MixedRadix: product overflows 64 bits");
    product_ *= r;
  }
}

MixedRadix MixedRadix::uniform(std::uint32_t r, std::size_t count) {
  RADIX_REQUIRE(count > 0, "MixedRadix::uniform: count must be positive");
  return MixedRadix(std::vector<std::uint32_t>(count, r));
}

std::uint64_t MixedRadix::place_value(std::size_t i) const {
  RADIX_REQUIRE(i < radices_.size(),
                "MixedRadix::place_value: digit index out of range");
  std::uint64_t v = 1;
  for (std::size_t j = 0; j < i; ++j) v *= radices_[j];
  return v;
}

std::vector<std::uint32_t> MixedRadix::encode(std::uint64_t v) const {
  RADIX_REQUIRE(v < product_, "MixedRadix::encode: value out of range");
  std::vector<std::uint32_t> out(radices_.size());
  for (std::size_t i = 0; i < radices_.size(); ++i) {
    out[i] = static_cast<std::uint32_t>(v % radices_[i]);
    v /= radices_[i];
  }
  return out;
}

std::uint64_t MixedRadix::decode(
    const std::vector<std::uint32_t>& digit_values) const {
  RADIX_REQUIRE(digit_values.size() == radices_.size(),
                "MixedRadix::decode: wrong digit count");
  std::uint64_t v = 0;
  std::uint64_t place = 1;
  for (std::size_t i = 0; i < radices_.size(); ++i) {
    RADIX_REQUIRE(digit_values[i] < radices_[i],
                  "MixedRadix::decode: digit exceeds its radix");
    v += digit_values[i] * place;
    place *= radices_[i];
  }
  return v;
}

double MixedRadix::mean_radix() const noexcept {
  double sum = 0.0;
  for (std::uint32_t r : radices_) sum += r;
  return sum / static_cast<double>(radices_.size());
}

double MixedRadix::radix_variance() const noexcept {
  const double mu = mean_radix();
  double acc = 0.0;
  for (std::uint32_t r : radices_) {
    const double d = r - mu;
    acc += d * d;
  }
  return acc / static_cast<double>(radices_.size());
}

std::string MixedRadix::to_string() const {
  std::ostringstream os;
  os << '(';
  for (std::size_t i = 0; i < radices_.size(); ++i) {
    if (i) os << ',';
    os << radices_[i];
  }
  os << ')';
  return os.str();
}

}  // namespace radix

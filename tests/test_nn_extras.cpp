// Dropout, LR schedules, gradient clipping, early stopping, extra
// datasets.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <set>

#include "nn/trainer.hpp"
#include "support/error.hpp"

namespace radix::nn {
namespace {

TEST(Dropout, EvalModeIsIdentity) {
  DropoutLayer layer(0.5f, 4);
  layer.set_training(false);
  Tensor x(2, 4, 3.0f);
  const Tensor y = layer.forward(x);
  EXPECT_EQ(Tensor::max_abs_diff(x, y), 0.0f);
  const Tensor dx = layer.backward(y);
  EXPECT_EQ(Tensor::max_abs_diff(dx, y), 0.0f);
}

TEST(Dropout, TrainModeZeroesAndRescales) {
  DropoutLayer layer(0.5f, 64, /*seed=*/3);
  Tensor x(8, 64, 1.0f);
  const Tensor y = layer.forward(x);
  std::size_t zeros = 0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    const float v = y.data()[i];
    EXPECT_TRUE(v == 0.0f || std::fabs(v - 2.0f) < 1e-6f) << v;
    if (v == 0.0f) ++zeros;
  }
  // Roughly half dropped.
  EXPECT_NEAR(static_cast<double>(zeros) / y.size(), 0.5, 0.1);
}

TEST(Dropout, BackwardUsesSameMask) {
  DropoutLayer layer(0.3f, 16, 5);
  Tensor x(4, 16, 1.0f);
  const Tensor y = layer.forward(x);
  Tensor dy(4, 16, 1.0f);
  const Tensor dx = layer.backward(dy);
  for (std::size_t i = 0; i < y.size(); ++i) {
    // Gradient flows exactly where the forward pass let values through.
    EXPECT_FLOAT_EQ(dx.data()[i], y.data()[i]);
  }
}

TEST(Dropout, ZeroProbabilityIsIdentityEvenInTraining) {
  DropoutLayer layer(0.0f, 4);
  Tensor x(1, 4, 2.0f);
  EXPECT_EQ(Tensor::max_abs_diff(layer.forward(x), x), 0.0f);
}

TEST(Dropout, RejectsBadP) {
  EXPECT_THROW(DropoutLayer(1.0f, 4), SpecError);
  EXPECT_THROW(DropoutLayer(-0.1f, 4), SpecError);
}

TEST(Dropout, PreservesExpectedValueApproximately) {
  DropoutLayer layer(0.25f, 256, 9);
  Tensor x(16, 256, 1.0f);
  const Tensor y = layer.forward(x);
  double sum = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i) sum += y.data()[i];
  EXPECT_NEAR(sum / y.size(), 1.0, 0.05);  // inverted dropout is unbiased
}

TEST(StepDecay, MultiplierSchedule) {
  StepDecay s(10, 0.5f);
  EXPECT_FLOAT_EQ(s.multiplier(0), 1.0f);
  EXPECT_FLOAT_EQ(s.multiplier(9), 1.0f);
  EXPECT_FLOAT_EQ(s.multiplier(10), 0.5f);
  EXPECT_FLOAT_EQ(s.multiplier(25), 0.25f);
}

TEST(CosineAnneal, EndpointsAndMidpoint) {
  CosineAnneal s(100, 0.1f);
  EXPECT_FLOAT_EQ(s.multiplier(0), 1.0f);
  EXPECT_NEAR(s.multiplier(50), 0.1f + 0.9f * 0.5f, 1e-5f);
  EXPECT_NEAR(s.multiplier(100), 0.1f, 1e-5f);
  EXPECT_NEAR(s.multiplier(150), 0.1f, 1e-5f);  // clamped past the end
}

TEST(Optimizers, LearningRateAccessors) {
  Sgd sgd(0.1f);
  EXPECT_FLOAT_EQ(sgd.learning_rate(), 0.1f);
  sgd.set_learning_rate(0.05f);
  EXPECT_FLOAT_EQ(sgd.learning_rate(), 0.05f);
  Adam adam(0.01f);
  adam.set_learning_rate(0.02f);
  EXPECT_FLOAT_EQ(adam.learning_rate(), 0.02f);
}

TEST(ClipGradients, ScalesDownLargeNorms) {
  std::vector<float> v = {0.0f, 0.0f};
  std::vector<float> g = {3.0f, 4.0f};  // norm 5
  std::vector<Param> params = {{v.data(), g.data(), 2}};
  const float norm = clip_gradients(params, 1.0f);
  EXPECT_FLOAT_EQ(norm, 5.0f);
  EXPECT_NEAR(g[0], 0.6f, 1e-6f);
  EXPECT_NEAR(g[1], 0.8f, 1e-6f);
}

TEST(ClipGradients, LeavesSmallNormsAlone) {
  std::vector<float> v = {0.0f};
  std::vector<float> g = {0.5f};
  std::vector<Param> params = {{v.data(), g.data(), 1}};
  (void)clip_gradients(params, 1.0f);
  EXPECT_FLOAT_EQ(g[0], 0.5f);
  EXPECT_THROW(clip_gradients(params, 0.0f), SpecError);
}

TEST(Trainer, EarlyStoppingTriggers) {
  Rng rng(1);
  const auto data = datasets::blobs(200, 4, 2, 0.05, rng);
  auto split = split_dataset(data, 0.25, rng);
  Network net = dense_mlp({4, 8, 2}, Activation::kRelu, rng);
  Adam opt(0.02f);
  TrainConfig cfg;
  cfg.epochs = 50;
  cfg.early_stop_patience = 3;
  const auto result = train_classifier(net, opt, split, cfg);
  // Trivially separable blobs hit 100% fast, then patience kicks in.
  EXPECT_TRUE(result.stopped_early);
  EXPECT_LT(result.epochs.size(), 50u);
  EXPECT_GE(result.best_test_accuracy, result.final_test_accuracy);
}

TEST(Trainer, ScheduleRestoresBaseLr) {
  Rng rng(2);
  const auto data = datasets::blobs(100, 3, 2, 0.2, rng);
  auto split = split_dataset(data, 0.25, rng);
  Network net = dense_mlp({3, 4, 2}, Activation::kRelu, rng);
  Adam opt(0.01f);
  CosineAnneal schedule(4);
  TrainConfig cfg;
  cfg.epochs = 4;
  cfg.lr_schedule = &schedule;
  (void)train_classifier(net, opt, split, cfg);
  EXPECT_FLOAT_EQ(opt.learning_rate(), 0.01f);
}

TEST(Trainer, TrainingWithDropoutAndClippingLearns) {
  Rng rng(3);
  const auto data = datasets::two_moons(600, 0.05, rng);
  auto split = split_dataset(data, 0.25, rng);
  Network net;
  net.add(std::make_unique<DenseLinear>(2, 32, rng));
  net.add(std::make_unique<ActivationLayer>(Activation::kRelu, 32));
  net.add(std::make_unique<DropoutLayer>(0.1f, 32));
  net.add(std::make_unique<DenseLinear>(32, 2, rng));
  Adam opt(0.01f);
  TrainConfig cfg;
  cfg.epochs = 25;
  cfg.clip_grad_norm = 5.0f;
  const auto result = train_classifier(net, opt, split, cfg);
  EXPECT_GT(result.final_test_accuracy, 0.9);
}

TEST(TwoMoons, ShapeAndBalance) {
  Rng rng(4);
  const auto d = datasets::two_moons(400, 0.0, rng);
  EXPECT_EQ(d.num_classes, 2u);
  EXPECT_EQ(d.features(), 2u);
  int ones = 0;
  for (auto l : d.labels) ones += l;
  EXPECT_NEAR(ones / 400.0, 0.5, 0.1);
  // Noise-free moons lie on unit circles.
  for (index_t i = 0; i < d.samples(); ++i) {
    const double x = d.x.at(i, 0);
    const double y = d.x.at(i, 1);
    if (d.labels[i] == 0) {
      EXPECT_NEAR(x * x + y * y, 1.0, 1e-5);
    } else {
      const double dx = x - 1.0, dy = y - 0.5;
      EXPECT_NEAR(dx * dx + dy * dy, 1.0, 1e-5);
    }
  }
}

TEST(Rings, RadiiMatchClasses) {
  Rng rng(5);
  const auto d = datasets::rings(300, 3, 0.0, rng);
  EXPECT_EQ(d.num_classes, 3u);
  for (index_t i = 0; i < d.samples(); ++i) {
    const double r = std::hypot(d.x.at(i, 0), d.x.at(i, 1));
    EXPECT_NEAR(r, (d.labels[i] + 1.0) / 3.0, 1e-5);
  }
  EXPECT_THROW(datasets::rings(10, 1, 0.1, rng), SpecError);
}

}  // namespace
}  // namespace radix::nn

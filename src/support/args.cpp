#include "support/args.hpp"

#include <sstream>

#include "support/error.hpp"

namespace radix {

void Args::add_flag(const std::string& name, const std::string& default_value,
                    const std::string& help) {
  RADIX_REQUIRE(!flags_.count(name), "Args: duplicate flag --" + name);
  flags_[name] = Flag{default_value, help, false, false};
}

void Args::add_bool(const std::string& name, const std::string& help) {
  RADIX_REQUIRE(!flags_.count(name), "Args: duplicate flag --" + name);
  flags_[name] = Flag{"0", help, true, false};
}

void Args::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool has_value = false;
    const auto eq = name.find('=');
    if (eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_value = true;
    }
    auto it = flags_.find(name);
    RADIX_REQUIRE(it != flags_.end(), "Args: unknown flag --" + name);
    Flag& flag = it->second;
    if (flag.is_bool) {
      RADIX_REQUIRE(!has_value, "Args: boolean flag --" + name +
                                    " does not take a value");
      // Assign via a temporary: GCC 12's -Wrestrict false-positives on
      // operator=(const char*) after inlining (GCC PR105329).
      flag.value = std::string("1");
    } else {
      if (!has_value) {
        RADIX_REQUIRE(i + 1 < argc,
                      "Args: flag --" + name + " needs a value");
        value = argv[++i];
      }
      flag.value = value;
    }
    flag.seen = true;
  }
}

std::string Args::get(const std::string& name) const {
  auto it = flags_.find(name);
  RADIX_REQUIRE(it != flags_.end(), "Args: undeclared flag --" + name);
  return it->second.value;
}

std::int64_t Args::get_int(const std::string& name) const {
  const std::string v = get(name);
  try {
    std::size_t used = 0;
    const long long out = std::stoll(v, &used);
    RADIX_REQUIRE(used == v.size(), "trailing characters");
    return out;
  } catch (const std::exception&) {
    throw SpecError("Args: flag --" + name + " is not an integer: " + v);
  }
}

double Args::get_double(const std::string& name) const {
  const std::string v = get(name);
  try {
    std::size_t used = 0;
    const double out = std::stod(v, &used);
    RADIX_REQUIRE(used == v.size(), "trailing characters");
    return out;
  } catch (const std::exception&) {
    throw SpecError("Args: flag --" + name + " is not a number: " + v);
  }
}

bool Args::get_bool(const std::string& name) const {
  return get(name) == "1";
}

std::string Args::usage(const std::string& program) const {
  std::ostringstream os;
  os << "usage: " << program << " [flags] [positional...]\n";
  for (const auto& [name, flag] : flags_) {
    os << "  --" << name;
    if (!flag.is_bool) os << " <value=" << flag.value << ">";
    os << "  " << flag.help << "\n";
  }
  return os.str();
}

}  // namespace radix

// Graph-theoretic properties of FNNTs (Section II of the paper).
//
// * path_count_matrix: the |U_0| x |U_n| matrix whose (u, v) entry is the
//   exact number of distinct directed paths from input u to output v,
//   computed as the semiring product W_1 * ... * W_n over BigUInt
//   (this is the nonzero block of A^n in eq. (11)-(13)).
// * symmetry: the FNNT is symmetric iff that matrix is a positive
//   constant m (Theorem 1's subject); we return m exactly.
// * path-connectedness: every entry positive (boolean product).
// * density: edges(G) / edges(dense DNN on the same widths).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/fnnt.hpp"
#include "support/biguint.hpp"

namespace radix {

/// Exact path-count matrix from inputs to outputs.
Csr<BigUInt> path_count_matrix(const Fnnt& g);

/// Boolean reachability from inputs to outputs: entry (u, v) nonzero iff
/// some path u -> v exists.  Cheaper than path_count_matrix.
Csr<pattern_t> reachability_matrix(const Fnnt& g);

/// True iff every output is reachable from every input.
bool is_path_connected(const Fnnt& g);

/// If the FNNT is symmetric (same positive number of paths m between
/// every input/output pair), returns m; otherwise nullopt.
std::optional<BigUInt> symmetry_constant(const Fnnt& g);

bool is_symmetric(const Fnnt& g);

/// Edge count of the fully-connected FNNT on the same node layers:
/// sum_i |U_{i-1}| * |U_i|.
std::uint64_t dense_edge_count(const Fnnt& g);

/// Density of G per Section II: edges(G) / dense_edge_count(G).
double density(const Fnnt& g);

/// Minimum possible density for these widths:
/// (sum_i |U_{i-1}|) / (sum_i |U_{i-1}||U_i|).
double min_density(const Fnnt& g);

/// Per-layer degree statistics (useful for comparing against X-Net's
/// regular-degree requirement).
struct DegreeStats {
  index_t min_out = 0, max_out = 0;
  index_t min_in = 0, max_in = 0;
  double mean_out = 0.0, mean_in = 0.0;
  bool out_regular() const noexcept { return min_out == max_out; }
  bool in_regular() const noexcept { return min_in == max_in; }
};
DegreeStats layer_degree_stats(const Csr<pattern_t>& layer);

/// Verify eq. (11)/(13): A^n (boolean) has its only nonzero block at
/// (input rows x output cols).  Returns true iff the block structure
/// matches.  Intended for small topologies (assembles the full A).
bool verify_power_block_structure(const Fnnt& g);

}  // namespace radix

// XXH64 checksum, implemented in-repo (no external dependency).
//
// Every section of a model artifact (store/format.hpp) carries an XXH64
// of its payload so truncation and bit-flips are caught at load time,
// before a single mapped byte reaches the inference kernels.  XXH64 was
// chosen over CRC32 for its 64-bit collision space and its speed on the
// multi-megabyte value arrays (one multiply-rotate per 8 bytes per
// lane); this is an integrity check against accidental corruption, not
// a cryptographic MAC.
#pragma once

#include <cstddef>
#include <cstdint>

namespace radix::store {

/// XXH64 of `len` bytes at `data` (reference algorithm constants).
std::uint64_t xxh64(const void* data, std::size_t len,
                    std::uint64_t seed = 0);

}  // namespace radix::store

// Registry journal: append/replay round trips, last-event-wins folding
// of the live set, crash-safety around the temp file, and typed
// rejection of malformed journals.
#include "store/journal.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdlib>
#include <fstream>
#include <string>

#include "support/error.hpp"

namespace {

using namespace radix;
using store::JournalEvent;
using store::JournalOp;
using store::RegistryJournal;

class StoreJournalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = "radixnet_journal_test_" + std::to_string(::getpid());
    std::string cmd = "rm -rf " + dir_ + " && mkdir -p " + dir_;
    ASSERT_EQ(0, std::system(cmd.c_str()));
  }
  void TearDown() override {
    std::string cmd = "rm -rf " + dir_;
    (void)std::system(cmd.c_str());
  }

  std::string dir_;
};

TEST_F(StoreJournalTest, FreshDirectoryCreatesEmptyCommittedJournal) {
  RegistryJournal j(dir_);
  EXPECT_TRUE(j.events().empty());
  EXPECT_TRUE(j.live().empty());

  std::ifstream in(dir_ + "/journal");
  std::string header;
  ASSERT_TRUE(std::getline(in, header));
  EXPECT_EQ(header, "radix-journal v1");
}

TEST_F(StoreJournalTest, AppendSurvivesReopen) {
  {
    RegistryJournal j(dir_);
    j.append({JournalOp::kAdd, "alpha", "alpha.radixart", 3});
    j.append({JournalOp::kAdd, "beta", "beta.radixart", 0});
    j.append({JournalOp::kSwap, "alpha", "alpha-v2.radixart", 3});
  }
  RegistryJournal j(dir_);
  ASSERT_EQ(j.events().size(), 3u);
  EXPECT_EQ(j.events()[0].op, JournalOp::kAdd);
  EXPECT_EQ(j.events()[2].op, JournalOp::kSwap);
  EXPECT_EQ(j.events()[2].model, "alpha");
  EXPECT_EQ(j.events()[2].artifact, "alpha-v2.radixart");
  EXPECT_EQ(j.events()[2].priority, 3);
}

TEST_F(StoreJournalTest, LiveSetFoldsLastEventPerModel) {
  RegistryJournal j(dir_);
  j.append({JournalOp::kAdd, "a", "a1.radixart", 1});
  j.append({JournalOp::kAdd, "b", "b1.radixart", 2});
  j.append({JournalOp::kSwap, "a", "a2.radixart", 1});
  j.append({JournalOp::kRemove, "b", "", 0});
  j.append({JournalOp::kAdd, "c", "c1.radixart", 0});
  j.append({JournalOp::kTombstone, "c", "", 0});

  auto live = j.live();
  ASSERT_EQ(live.size(), 1u);
  EXPECT_EQ(live[0].model, "a");
  EXPECT_EQ(live[0].artifact, "a2.radixart");
  EXPECT_EQ(live[0].priority, 1);
}

TEST_F(StoreJournalTest, ReAddAfterRemoveComesBack) {
  RegistryJournal j(dir_);
  j.append({JournalOp::kAdd, "m", "m1.radixart", 0});
  j.append({JournalOp::kRemove, "m", "", 0});
  j.append({JournalOp::kAdd, "m", "m2.radixart", 5});
  auto live = j.live();
  ASSERT_EQ(live.size(), 1u);
  EXPECT_EQ(live[0].artifact, "m2.radixart");
  EXPECT_EQ(live[0].priority, 5);
}

TEST_F(StoreJournalTest, StaleTempFileIsIgnored) {
  {
    RegistryJournal j(dir_);
    j.append({JournalOp::kAdd, "m", "m.radixart", 0});
  }
  // A crash between write and rename leaves journal.tmp behind; replay
  // must read only the committed journal.
  std::ofstream tmp(dir_ + "/journal.tmp");
  tmp << "garbage that must never be parsed\n";
  tmp.close();

  RegistryJournal j(dir_);
  ASSERT_EQ(j.events().size(), 1u);
  EXPECT_EQ(j.events()[0].model, "m");
}

TEST_F(StoreJournalTest, MalformedJournalThrowsWithLineNumber) {
  {
    std::ofstream out(dir_ + "/journal");
    out << "radix-journal v1\n";
    out << "add\tm\tm.radixart\t0\n";
    out << "frobnicate\tm\n";
  }
  try {
    RegistryJournal j(dir_);
    FAIL() << "malformed journal must not load";
  } catch (const IoError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(":3"), std::string::npos) << what;
    EXPECT_NE(what.find("frobnicate"), std::string::npos) << what;
  }
}

TEST_F(StoreJournalTest, MissingHeaderThrows) {
  {
    std::ofstream out(dir_ + "/journal");
    out << "add\tm\tm.radixart\t0\n";
  }
  EXPECT_THROW(RegistryJournal j(dir_), IoError);
}

TEST_F(StoreJournalTest, BadPriorityThrows) {
  {
    std::ofstream out(dir_ + "/journal");
    out << "radix-journal v1\n";
    out << "add\tm\tm.radixart\t9000\n";
  }
  EXPECT_THROW(RegistryJournal j(dir_), IoError);
}

TEST_F(StoreJournalTest, FieldsMayNotContainTabs) {
  RegistryJournal j(dir_);
  EXPECT_THROW(j.append({JournalOp::kAdd, "bad\tname", "a.radixart", 0}),
               IoError);
  // The failed append must not poison the in-memory event list.
  EXPECT_TRUE(j.events().empty());
}

}  // namespace

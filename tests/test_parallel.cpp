// The OpenMP-backed parallel loop helpers: correctness for serial and
// parallel trip counts, and the reduction helper.
#include "support/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <vector>

namespace radix {
namespace {

TEST(Parallel, HardwareThreadsIsPositive) {
  EXPECT_GE(hardware_threads(), 1);
}

TEST(Parallel, ForVisitsEveryIndexOnce) {
  // Both below the grain (serial path) and far above it (parallel path).
  for (const std::int64_t n : {0LL, 1LL, 7LL, 100000LL}) {
    std::vector<std::atomic<int>> hits(static_cast<std::size_t>(n));
    parallel_for(0, n, [&](std::int64_t i) {
      hits[static_cast<std::size_t>(i)].fetch_add(1,
                                                  std::memory_order_relaxed);
    });
    for (std::int64_t i = 0; i < n; ++i) {
      EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "i=" << i;
    }
  }
}

TEST(Parallel, ForHonorsNonZeroBegin) {
  std::atomic<std::int64_t> sum{0};
  parallel_for(10, 20, [&](std::int64_t i) {
    sum.fetch_add(i, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 145);  // 10 + 11 + ... + 19
}

TEST(Parallel, ForEmptyAndReversedRangesAreNoOps) {
  bool touched = false;
  parallel_for(5, 5, [&](std::int64_t) { touched = true; });
  parallel_for(5, 3, [&](std::int64_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(Parallel, ReduceSumMatchesSerialSum) {
  // Large enough to take the parallel branch under OpenMP.
  const std::int64_t n = 100000;
  const std::int64_t got =
      parallel_reduce_sum<std::int64_t>(0, n, [](std::int64_t i) { return i; });
  EXPECT_EQ(got, n * (n - 1) / 2);

  const double got_d =
      parallel_reduce_sum<double>(0, 1000, [](std::int64_t) { return 0.5; });
  EXPECT_DOUBLE_EQ(got_d, 500.0);
}

TEST(Parallel, ReduceSumEmptyRangeIsZero) {
  EXPECT_EQ(parallel_reduce_sum<int>(3, 3, [](std::int64_t) { return 1; }), 0);
  EXPECT_EQ(parallel_reduce_sum<int>(9, 2, [](std::int64_t) { return 1; }), 0);
}

}  // namespace
}  // namespace radix

// Parameter-space enumeration (the diversity claim of Section I).
#include "radixnet/enumerate.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "radixnet/analytics.hpp"
#include "support/error.hpp"

namespace radix {
namespace {

TEST(PrimeFactors, KnownValues) {
  EXPECT_EQ(prime_factors(2), (std::vector<std::uint64_t>{2}));
  EXPECT_EQ(prime_factors(12), (std::vector<std::uint64_t>{2, 2, 3}));
  EXPECT_EQ(prime_factors(97), (std::vector<std::uint64_t>{97}));
  EXPECT_EQ(prime_factors(1024),
            std::vector<std::uint64_t>(10, 2));
  EXPECT_THROW(prime_factors(1), SpecError);
}

TEST(Factorizations, TwelveHasFourPartitions) {
  // 12 = 12 = 2*6 = 3*4 = 2*2*3.
  auto f = factorizations(12);
  EXPECT_EQ(f.size(), 4u);
  for (const auto& parts : f) {
    std::uint64_t prod = 1;
    for (auto p : parts) {
      EXPECT_GE(p, 2u);
      prod *= p;
    }
    EXPECT_EQ(prod, 12u);
    EXPECT_TRUE(std::is_sorted(parts.begin(), parts.end()));
  }
}

TEST(Factorizations, PrimeHasOne) {
  EXPECT_EQ(factorizations(13).size(), 1u);
}

TEST(Factorizations, LimitCapsOutput) {
  EXPECT_LE(factorizations(256, 3).size(), 3u);
}

TEST(SystemsWithProduct, ExactDigitCount) {
  const auto two = systems_with_product(36, 2);
  // 36 = 2*18 = 3*12 = 4*9 = 6*6.
  EXPECT_EQ(two.size(), 4u);
  const auto three = systems_with_product(36, 3);
  // 36 = 2*2*9 = 2*3*6 = 3*3*4.
  EXPECT_EQ(three.size(), 3u);
  EXPECT_TRUE(systems_with_product(36, 5).empty());
}

TEST(BalancedSystem, PicksMinimumVariance) {
  const auto sys = balanced_system(36, 2);
  ASSERT_TRUE(sys.has_value());
  EXPECT_EQ(sys->radices(), (std::vector<std::uint32_t>{6, 6}));
  const auto sys3 = balanced_system(36, 3);
  ASSERT_TRUE(sys3.has_value());
  EXPECT_EQ(sys3->radices(), (std::vector<std::uint32_t>{3, 3, 4}));
}

TEST(BalancedSystem, NoneWhenImpossible) {
  EXPECT_FALSE(balanced_system(7, 2).has_value());
}

TEST(CountConfigurations, GrowsWithSystems) {
  const auto one = count_emr_configurations(12, 1);
  const auto two = count_emr_configurations(12, 2);
  EXPECT_GT(one, 0u);
  // Two systems: full-product choices times last-divisor choices.
  EXPECT_EQ(two, 4u * one);
  // Diversity vs explicit X-Net: a Cayley layer on 12 nodes with fixed
  // generator has exactly one structure; RadiX-Net already has `one` > 1.
  EXPECT_GT(one, 1u);
}

TEST(SpecForDensity, HitsExactRoots) {
  // N' = 64: candidates mu = 2 (d=6), 4 (d=3), 8 (d=2), 64 (d=1).
  const auto spec = spec_for_density(64, 2, 8.0 / 64.0);
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->systems().front().radices(),
            (std::vector<std::uint32_t>{8, 8}));
  EXPECT_NEAR(exact_density(*spec), 8.0 / 64.0, 1e-12);
}

TEST(SpecForDensity, PicksClosestWhenInexact) {
  const auto spec = spec_for_density(64, 1, 0.045);  // between 2/64 and 4/64
  ASSERT_TRUE(spec.has_value());
  const double delta = exact_density(*spec);
  EXPECT_TRUE(std::abs(delta - 2.0 / 64) < 1e-9 ||
              std::abs(delta - 4.0 / 64) < 1e-9);
}

TEST(SpecForDensity, NoneForPrimeWidthBelowFull) {
  // N' = 7 only admits mu = 7 (density 1); asking for 0.01 still returns
  // the best available (7).
  const auto spec = spec_for_density(7, 1, 0.01);
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->systems().front().radices(),
            (std::vector<std::uint32_t>{7}));
}

TEST(SpecForDensity, RejectsBadTarget) {
  EXPECT_THROW(spec_for_density(64, 1, 0.0), SpecError);
  EXPECT_THROW(spec_for_density(64, 1, 1.5), SpecError);
}

}  // namespace
}  // namespace radix

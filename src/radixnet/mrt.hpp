// Mixed-radix topologies (Section III.A, eq. (1)-(2), Fig 1).
//
// Given N = (N_1, ..., N_L) with N' = prod N_i, the mixed-radix topology
// induced by N has L+1 node layers of N' nodes each; layer transition i
// connects node j of U_{i-1} to node (j + n * nu_i) mod N' of U_i for
// every n in {0, ..., N_i - 1}, where nu_i = prod_{k<i} N_k.  Its
// adjacency submatrix is therefore W_i = sum_{n<N_i} P^{n*nu_i} (eq. (1))
// with P the N'-cyclic shift (eq. (2)).
//
// `nodes` may exceed the system's product: the RadiX-Net constraints
// (Section III.A, bullet 2) allow the *last* system's product to merely
// divide N', in which case its topology is laid out on N' nodes with the
// same edge rule.  mixed_radix_topology defaults nodes to the product.
#pragma once

#include <vector>

#include "graph/fnnt.hpp"
#include "radixnet/mixed_radix.hpp"

namespace radix {

/// One adjacency submatrix W = sum_{n<radix} P^{n*stride} on `nodes`
/// nodes.  Requires radix * ... not to alias: stride * radix <= nodes is
/// NOT required (offsets wrap mod nodes), but duplicate offsets collapse,
/// so callers wanting exactly `radix` distinct targets per node must keep
/// n*stride distinct mod nodes.
Csr<pattern_t> mrt_submatrix(index_t nodes, std::uint32_t radix,
                             std::uint64_t stride);

/// The full mixed-radix topology induced by `system`, on `nodes` nodes
/// per layer (0 = use system.product()).  Throws SpecError unless
/// system.product() divides nodes.
Fnnt mixed_radix_topology(const MixedRadix& system, index_t nodes = 0);

/// Decision-tree view (Fig 1): the set of nodes reachable in layer `depth`
/// from input node `root` -- the mixed-radix topology restricted to one
/// root is exactly an offset decision tree.  Returns sorted node labels.
std::vector<index_t> decision_tree_level(const MixedRadix& system,
                                         index_t root, std::size_t depth);

}  // namespace radix

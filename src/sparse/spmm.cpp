#include "sparse/spmm.hpp"

#include "support/error.hpp"
#include "support/parallel.hpp"

namespace radix {

void spmm_dense_csr(const float* x, index_t batch, index_t m,
                    const Csr<float>& w, float* y) {
  RADIX_REQUIRE_DIM(w.rows() == m, "spmm_dense_csr: inner dim mismatch");
  const index_t n = w.cols();
  const auto& rowptr = w.rowptr();
  const auto& colind = w.colind();
  const auto& vals = w.values();
  parallel_for(
      0, batch,
      [&](std::int64_t b) {
        const float* xb = x + static_cast<std::size_t>(b) * m;
        float* yb = y + static_cast<std::size_t>(b) * n;
        for (index_t r = 0; r < m; ++r) {
          const float xv = xb[r];
          if (xv == 0.0f) continue;  // activations are often sparse (ReLU)
          for (offset_t k = rowptr[r]; k < rowptr[r + 1]; ++k) {
            yb[colind[k]] += xv * vals[k];
          }
        }
      },
      /*grain=*/1);
}

void spmm_dense_csrT(const float* x, index_t batch, index_t n,
                     const Csr<float>& w, float* y) {
  RADIX_REQUIRE_DIM(w.cols() == n, "spmm_dense_csrT: inner dim mismatch");
  const index_t m = w.rows();
  const auto& rowptr = w.rowptr();
  const auto& colind = w.colind();
  const auto& vals = w.values();
  parallel_for(
      0, batch,
      [&](std::int64_t b) {
        const float* xb = x + static_cast<std::size_t>(b) * n;
        float* yb = y + static_cast<std::size_t>(b) * m;
        for (index_t r = 0; r < m; ++r) {
          float acc = yb[r];
          for (offset_t k = rowptr[r]; k < rowptr[r + 1]; ++k) {
            acc += xb[colind[k]] * vals[k];
          }
          yb[r] = acc;
        }
      },
      /*grain=*/1);
}

void spmv(const Csr<float>& w, const float* x, float* y) {
  const auto& rowptr = w.rowptr();
  const auto& colind = w.colind();
  const auto& vals = w.values();
  parallel_for(
      0, w.rows(),
      [&](std::int64_t r) {
        float acc = 0.0f;
        for (offset_t k = rowptr[r]; k < rowptr[r + 1]; ++k) {
          acc += vals[k] * x[colind[k]];
        }
        y[r] = acc;
      },
      /*grain=*/4096);
}

void sddmm_pattern(const float* x, const float* dy, index_t batch,
                   index_t m, index_t n, const Csr<float>& w,
                   float* grad_values) {
  RADIX_REQUIRE_DIM(w.rows() == m && w.cols() == n,
                    "sddmm_pattern: shape mismatch");
  const auto& rowptr = w.rowptr();
  const auto& colind = w.colind();
  // Parallel over pattern rows: each stored entry is written exactly once.
  parallel_for(
      0, m,
      [&](std::int64_t r) {
        for (offset_t k = rowptr[r]; k < rowptr[r + 1]; ++k) {
          const index_t c = colind[k];
          float acc = 0.0f;
          for (index_t b = 0; b < batch; ++b) {
            acc += x[static_cast<std::size_t>(b) * m + r] *
                   dy[static_cast<std::size_t>(b) * n + c];
          }
          grad_values[k] += acc;
        }
      },
      /*grain=*/64);
}

}  // namespace radix

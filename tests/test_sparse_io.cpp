// TSV serialization round-trips and failure injection.
#include "sparse/io.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "support/error.hpp"
#include "support/random.hpp"

namespace radix {
namespace {

class SparseIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("radixnet_io_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  std::filesystem::path dir_;
};

Csr<float> random_f32(index_t rows, index_t cols, double density, Rng& rng) {
  Coo<float> coo(rows, cols);
  for (index_t r = 0; r < rows; ++r) {
    for (index_t c = 0; c < cols; ++c) {
      if (rng.bernoulli(density)) {
        coo.push(r, c, static_cast<float>(rng.uniform(-4.0, 4.0)));
      }
    }
  }
  return Csr<float>::from_coo(coo);
}

TEST_F(SparseIoTest, FloatRoundTrip) {
  Rng rng(1);
  const auto m = random_f32(12, 9, 0.3, rng);
  write_tsv(path("m.tsv"), m);
  const auto back = read_tsv_f32(path("m.tsv"));
  ASSERT_EQ(back.rows(), m.rows());
  ASSERT_EQ(back.cols(), m.cols());
  ASSERT_EQ(back.nnz(), m.nnz());
  for (index_t r = 0; r < m.rows(); ++r) {
    auto c0 = m.row_cols(r);
    auto c1 = back.row_cols(r);
    ASSERT_EQ(std::vector<index_t>(c0.begin(), c0.end()),
              std::vector<index_t>(c1.begin(), c1.end()));
    for (std::size_t k = 0; k < c0.size(); ++k) {
      EXPECT_NEAR(m.row_vals(r)[k], back.row_vals(r)[k], 1e-5f);
    }
  }
}

TEST_F(SparseIoTest, PatternRoundTrip) {
  Rng rng(2);
  const auto m = random_f32(7, 7, 0.4, rng).pattern();
  write_tsv(path("p.tsv"), m);
  EXPECT_EQ(read_tsv_pattern(path("p.tsv")), m);
}

TEST_F(SparseIoTest, ShapeHeaderPreservesEmptyTrailingRows) {
  Coo<float> coo(5, 6);
  coo.push(0, 0, 1.0f);  // rows 1..4 and cols 1..5 are empty
  const auto m = Csr<float>::from_coo(coo);
  write_tsv(path("s.tsv"), m);
  const auto back = read_tsv_f32(path("s.tsv"));
  EXPECT_EQ(back.rows(), 5u);
  EXPECT_EQ(back.cols(), 6u);
}

TEST_F(SparseIoTest, MissingFileThrows) {
  EXPECT_THROW(read_tsv_f32(path("nope.tsv")), IoError);
}

TEST_F(SparseIoTest, GarbageLineThrows) {
  std::ofstream out(path("bad.tsv"));
  out << "1\t2\tnot_a_number\n";
  out.close();
  EXPECT_THROW(read_tsv_f32(path("bad.tsv")), IoError);
}

TEST_F(SparseIoTest, ZeroBasedIndexRejected) {
  std::ofstream out(path("zero.tsv"));
  out << "0\t1\t3.5\n";
  out.close();
  EXPECT_THROW(read_tsv_f32(path("zero.tsv")), IoError);
}

TEST_F(SparseIoTest, EntryOutsideDeclaredShapeRejected) {
  std::ofstream out(path("oob.tsv"));
  out << "%%shape 2 2\n3\t1\t1.0\n";
  out.close();
  EXPECT_THROW(read_tsv_f32(path("oob.tsv")), IoError);
}

TEST_F(SparseIoTest, CommentsAndBlankLinesIgnored) {
  std::ofstream out(path("c.tsv"));
  out << "%%shape 2 2\n% a comment\n\n# another\n1\t2\t1.5\n";
  out.close();
  const auto m = read_tsv_f32(path("c.tsv"));
  EXPECT_EQ(m.nnz(), 1u);
  EXPECT_FLOAT_EQ(m.at(0, 1), 1.5f);
}

TEST_F(SparseIoTest, DuplicateEntriesCombineAdditively) {
  std::ofstream out(path("dup.tsv"));
  out << "1\t1\t2.0\n1\t1\t3.0\n";
  out.close();
  const auto m = read_tsv_f32(path("dup.tsv"));
  EXPECT_EQ(m.nnz(), 1u);
  EXPECT_FLOAT_EQ(m.at(0, 0), 5.0f);
}

TEST_F(SparseIoTest, LayerStackRoundTrip) {
  Rng rng(3);
  std::vector<Csr<pattern_t>> layers;
  layers.push_back(random_f32(4, 6, 0.5, rng).pattern());
  layers.push_back(random_f32(6, 5, 0.5, rng).pattern());
  layers.push_back(random_f32(5, 4, 0.5, rng).pattern());
  write_layer_stack(path("stack"), layers);
  const auto back = read_layer_stack(path("stack"));
  ASSERT_EQ(back.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(back[i], layers[i]) << "layer " << i;
  }
}

TEST_F(SparseIoTest, LayerStackMissingMetaThrows) {
  EXPECT_THROW(read_layer_stack(path("ghost")), IoError);
}

TEST_F(SparseIoTest, EmptyMatrixRoundTrip) {
  const auto m = Csr<float>::from_coo(Coo<float>(3, 4));
  ASSERT_EQ(m.nnz(), 0u);
  write_tsv(path("empty.tsv"), m);
  const auto back = read_tsv_f32(path("empty.tsv"));
  EXPECT_EQ(back.rows(), 3u);
  EXPECT_EQ(back.cols(), 4u);
  EXPECT_EQ(back.nnz(), 0u);
}

TEST_F(SparseIoTest, ShapeHeaderPreservesTrailingZeroRowsAndCols) {
  // Last two rows and last three columns hold no entries; only the
  // %%shape header keeps them from being silently truncated.
  Coo<float> coo(6, 8);
  coo.push(0, 0, 1.0f);
  coo.push(3, 4, -2.5f);
  const auto m = Csr<float>::from_coo(coo);
  write_tsv(path("trail.tsv"), m);
  const auto back = read_tsv_f32(path("trail.tsv"));
  EXPECT_EQ(back.rows(), 6u);
  EXPECT_EQ(back.cols(), 8u);
  EXPECT_EQ(back.nnz(), 2u);
  EXPECT_FLOAT_EQ(back.at(3, 4), -2.5f);
}

TEST_F(SparseIoTest, ParseErrorsCarryPathAndLine) {
  std::ofstream out(path("where.tsv"));
  out << "1\t1\t1.0\n2\t2\t2.0\nbogus line here\n";
  out.close();
  try {
    read_tsv_f32(path("where.tsv"));
    FAIL() << "garbage line must throw";
  } catch (const IoError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(path("where.tsv") + ":3"), std::string::npos) << what;
  }
}

TEST_F(SparseIoTest, OutOfShapeErrorNamesOffendingLine) {
  std::ofstream out(path("oobline.tsv"));
  out << "%%shape 2 2\n1\t1\t1.0\n3\t1\t1.0\n";
  out.close();
  try {
    read_tsv_f32(path("oobline.tsv"));
    FAIL() << "entry outside %%shape must throw";
  } catch (const IoError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(path("oobline.tsv") + ":3"), std::string::npos)
        << what;
  }
}

TEST_F(SparseIoTest, LayerStackMetaShapeDisagreementThrows) {
  // An index file that disagrees with the layer files must throw, not
  // quietly deliver the wrong shapes.
  Rng rng(4);
  std::vector<Csr<pattern_t>> layers;
  layers.push_back(random_f32(4, 6, 0.5, rng).pattern());
  layers.push_back(random_f32(6, 5, 0.5, rng).pattern());
  write_layer_stack(path("liar"), layers);
  {
    std::ofstream meta(path("liar") + "-meta.txt", std::ios::trunc);
    meta << 2 << '\n' << "4 6\n" << "7 5\n";  // wrong rows for layer 1
  }
  try {
    read_layer_stack(path("liar"));
    FAIL() << "meta/layer disagreement must throw";
  } catch (const IoError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("disagrees"), std::string::npos) << what;
    EXPECT_NE(what.find("layer1"), std::string::npos) << what;
  }
}

TEST_F(SparseIoTest, LayerStackMetaCountBeyondFilesThrows) {
  Rng rng(5);
  std::vector<Csr<pattern_t>> layers;
  layers.push_back(random_f32(3, 3, 0.5, rng).pattern());
  write_layer_stack(path("overcount"), layers);
  {
    std::ofstream meta(path("overcount") + "-meta.txt", std::ios::trunc);
    meta << 2 << '\n' << "3 3\n" << "3 3\n";  // claims a second layer
  }
  EXPECT_THROW(read_layer_stack(path("overcount")), IoError);
}

}  // namespace
}  // namespace radix

#include "net/wire.hpp"

#include <cstring>

#include "serve/request.hpp"

namespace radix::net {

// --- WireWriter ------------------------------------------------------------

void WireWriter::f32(float v) {
  std::uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  u32(bits);
}

void WireWriter::f64(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void WireWriter::str(std::string_view s) {
  RADIX_REQUIRE(s.size() <= kMaxFrameBytes, "wire: string too long");
  u32(static_cast<std::uint32_t>(s.size()));
  out_.insert(out_.end(), s.begin(), s.end());
}

void WireWriter::floats(std::span<const float> v) {
  RADIX_REQUIRE(v.size() <= kMaxFrameBytes / sizeof(float),
                "wire: float payload too long");
  u32(static_cast<std::uint32_t>(v.size()));
  for (const float x : v) f32(x);
}

// --- WireReader ------------------------------------------------------------

std::span<const std::uint8_t> WireReader::need(std::size_t n) {
  if (remaining() < n) throw IoError("wire: truncated frame body");
  const auto view = in_.subspan(pos_, n);
  pos_ += n;
  return view;
}

std::uint8_t WireReader::u8() { return need(1)[0]; }

std::uint16_t WireReader::u16() {
  const auto b = need(2);
  return static_cast<std::uint16_t>(b[0] | (std::uint16_t(b[1]) << 8));
}

std::uint32_t WireReader::u32() {
  const auto b = need(4);
  std::uint32_t v = 0;
  for (std::size_t i = 0; i < 4; ++i) v |= std::uint32_t(b[i]) << (8 * i);
  return v;
}

std::uint64_t WireReader::u64() {
  const auto b = need(8);
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < 8; ++i) v |= std::uint64_t(b[i]) << (8 * i);
  return v;
}

float WireReader::f32() {
  const std::uint32_t bits = u32();
  float v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

double WireReader::f64() {
  const std::uint64_t bits = u64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string WireReader::str() {
  const std::uint32_t n = u32();
  const auto b = need(n);
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

std::vector<float> WireReader::floats() {
  const std::uint32_t n = u32();
  std::vector<float> out;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) out.push_back(f32());
  return out;
}

void WireReader::expect_end() const {
  if (pos_ != in_.size()) throw IoError("wire: trailing bytes in frame body");
}

// --- Frame assembly --------------------------------------------------------

std::vector<std::uint8_t> encode_frame(MsgType type, std::uint64_t correlation,
                                       std::span<const std::uint8_t> body) {
  // length counts type + correlation + body.
  const std::uint64_t length = 1 + 8 + body.size();
  RADIX_REQUIRE(length <= kMaxFrameBytes, "wire: frame exceeds kMaxFrameBytes");
  std::vector<std::uint8_t> out;
  out.reserve(4 + length);
  WireWriter w(out);
  w.u32(static_cast<std::uint32_t>(length));
  w.u8(static_cast<std::uint8_t>(type));
  w.u64(correlation);
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

std::optional<Frame> try_parse_frame(std::vector<std::uint8_t>& buffer) {
  if (buffer.size() < 4) return std::nullopt;
  std::uint32_t length = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    length |= std::uint32_t(buffer[i]) << (8 * i);
  }
  if (length < 1 + 8 || length > kMaxFrameBytes) {
    throw IoError("wire: corrupt frame length");
  }
  if (buffer.size() < 4 + static_cast<std::size_t>(length)) return std::nullopt;
  Frame f;
  f.type = static_cast<MsgType>(buffer[4]);
  std::uint64_t corr = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    corr |= std::uint64_t(buffer[5 + i]) << (8 * i);
  }
  f.correlation = corr;
  f.body.assign(buffer.begin() + 4 + 1 + 8, buffer.begin() + 4 + length);
  buffer.erase(buffer.begin(), buffer.begin() + 4 + length);
  return f;
}

// --- Serving-type codecs ---------------------------------------------------

void encode_histogram(WireWriter& w, const serve::Log2Histogram& h) {
  w.f64(h.base());
  w.u64(h.count());
  w.f64(h.sum());
  w.f64(h.max());
  w.u32(static_cast<std::uint32_t>(serve::Log2Histogram::kBuckets));
  for (const std::uint64_t c : h.raw_counts()) w.u64(c);
}

serve::Log2Histogram decode_histogram(WireReader& r) {
  const double base = r.f64();
  const std::uint64_t count = r.u64();
  const double sum = r.f64();
  const double max = r.f64();
  const std::uint32_t buckets = r.u32();
  // A peer with a different grid cannot merge exactly; refuse rather
  // than silently re-bucket.
  if (buckets != static_cast<std::uint32_t>(serve::Log2Histogram::kBuckets)) {
    throw IoError("wire: histogram bucket-grid mismatch");
  }
  std::array<std::uint64_t, serve::Log2Histogram::kBuckets> counts{};
  for (auto& c : counts) c = r.u64();
  return serve::Log2Histogram::from_raw(base, counts, count, sum, max);
}

void encode_stats(WireWriter& w, const serve::ServeStats& s) {
  w.u64(s.requests);
  w.u64(s.rows);
  w.u64(s.batches);
  w.u64(s.edges);
  w.u64(s.errors);
  w.u64(s.shed);
  w.u64(s.expired);
  w.f64(s.busy_seconds);
  encode_histogram(w, s.batch_rows_hist);
  encode_histogram(w, s.queue_wait_hist);
  encode_histogram(w, s.e2e_hist);
}

serve::ServeStats decode_stats(WireReader& r) {
  serve::ServeStats s;
  s.requests = r.u64();
  s.rows = r.u64();
  s.batches = r.u64();
  s.edges = r.u64();
  s.errors = r.u64();
  s.shed = r.u64();
  s.expired = r.u64();
  s.busy_seconds = r.f64();
  s.batch_rows_hist = decode_histogram(r);
  s.queue_wait_hist = decode_histogram(r);
  s.e2e_hist = decode_histogram(r);
  s.finalize();
  return s;
}

void encode_model_info(WireWriter& w, const WireModelInfo& m) {
  w.u64(m.id);
  w.str(m.name);
  w.u32(m.input_width);
  w.u32(m.output_width);
  w.u8(static_cast<std::uint8_t>(m.priority));
  w.u8(m.retired ? 1 : 0);
  w.u32(m.version);
  w.u64(m.pending);
}

WireModelInfo decode_model_info(WireReader& r) {
  WireModelInfo m;
  m.id = r.u64();
  m.name = r.str();
  m.input_width = r.u32();
  m.output_width = r.u32();
  const std::uint8_t p = r.u8();
  if (p >= serve::kNumPriorities) throw IoError("wire: bad priority value");
  m.priority = static_cast<serve::Priority>(p);
  m.retired = r.u8() != 0;
  m.version = r.u32();
  m.pending = r.u64();
  return m;
}

WireError classify_error(std::exception_ptr error) {
  WireError e;
  if (!error) return e;
  try {
    std::rethrow_exception(error);
  } catch (const serve::AbortedError& ex) {
    e.kind = WireErrorKind::kAborted;
    e.message = ex.what();
  } catch (const serve::DeadlineExceededError& ex) {
    e.kind = WireErrorKind::kDeadline;
    e.message = ex.what();
  } catch (const std::exception& ex) {
    e.kind = WireErrorKind::kGeneric;
    e.message = ex.what();
  } catch (...) {
    e.kind = WireErrorKind::kGeneric;
    e.message = "unknown serving error";
  }
  return e;
}

void throw_wire_error(const WireError& e) {
  switch (e.kind) {
    case WireErrorKind::kAborted: throw serve::AbortedError(e.message);
    case WireErrorKind::kDeadline: throw serve::DeadlineExceededError(e.message);
    case WireErrorKind::kNone:
    case WireErrorKind::kGeneric: break;
  }
  throw Error(e.message);
}

}  // namespace radix::net

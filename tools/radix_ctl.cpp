// radix-ctl: admin CLI against a running radix-served.
//
//   radix-ctl --port <p> <command> [arg]
//
//   ping                      round-trip liveness probe
//   models                    registry table (id, name, widths, class, ...)
//   stats <model>             one model's ServeStats (name or numeric id)
//   pending <model>           queued-but-unclaimed count
//   class-stats <class>       interactive | batch | background
//   metrics                   Prometheus text exposition (scrape to stdout)
//   health                    per-shard health
//   drain <shard>             take a shard out of rotation, wait for drain
//   restart <shard>           return/replace a shard
//   kill <shard>              crash-shaped shard stop (failover exercise)
//   save <model> <path>       persist a model as a RADIXART artifact at
//                             <path> on the SERVER's filesystem
//   load <path> [name]        register a model from a server-side
//                             artifact (name defaults to the one stored
//                             in the artifact)
//   infer-hash <model> [rows] run a deterministic synthetic batch and
//                             print the xxh64 of the output activations
//                             -- two servers hosting bit-identical
//                             copies of a model print the same hash
//   shutdown                  stop the served process
//
// Exit code 0 on success, 1 on a server/connection error, 2 on usage
// errors -- the bash smoke tests grep this tool's stdout.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "net/remote_backend.hpp"
#include "radixnet/graph_challenge.hpp"
#include "store/checksum.hpp"
#include "support/args.hpp"
#include "support/random.hpp"

using namespace radix;

namespace {

const char* health_name(serve::ShardHealth h) {
  switch (h) {
    case serve::ShardHealth::kUp: return "up";
    case serve::ShardHealth::kDraining: return "draining";
    case serve::ShardHealth::kDown: return "down";
  }
  return "?";
}

serve::Priority parse_class(const std::string& name) {
  if (name == "interactive") return serve::Priority::kInteractive;
  if (name == "batch") return serve::Priority::kBatch;
  if (name == "background") return serve::Priority::kBackground;
  throw SpecError("unknown class '" + name +
                  "' (interactive | batch | background)");
}

serve::ModelId parse_model(const net::RemoteBackend& remote,
                           const std::string& arg) {
  if (!arg.empty() && arg.find_first_not_of("0123456789") == std::string::npos) {
    return static_cast<serve::ModelId>(std::stoull(arg));
  }
  const auto id = remote.find_model(arg);
  RADIX_REQUIRE(id.has_value(), "no model named '" + arg + "'");
  return *id;
}

std::size_t parse_shard(const std::string& arg) {
  RADIX_REQUIRE(!arg.empty() &&
                    arg.find_first_not_of("0123456789") == std::string::npos,
                "shard index must be a number, got '" + arg + "'");
  return static_cast<std::size_t>(std::stoull(arg));
}

void print_health(const std::vector<serve::ShardHealth>& health) {
  for (std::size_t i = 0; i < health.size(); ++i) {
    std::printf("shard %zu: %s\n", i, health_name(health[i]));
  }
}

int run(net::RemoteBackend& remote, const std::string& command,
        const std::vector<std::string>& rest) {
  const auto arg = [&](const char* what) -> const std::string& {
    RADIX_REQUIRE(rest.size() >= 2,
                  std::string("missing argument: ") + what);
    return rest[1];
  };
  if (command == "ping") {
    remote.ping();
    std::printf("pong\n");
  } else if (command == "models") {
    std::printf("%-4s %-16s %6s %6s %-12s %3s %8s %8s\n", "id", "name", "in",
                "out", "class", "ver", "pending", "state");
    for (const net::WireModelInfo& m : remote.list_models()) {
      std::printf("%-4llu %-16s %6u %6u %-12s %3u %8llu %8s\n",
                  static_cast<unsigned long long>(m.id), m.name.c_str(),
                  m.input_width, m.output_width,
                  serve::to_string(m.priority), m.version,
                  static_cast<unsigned long long>(m.pending),
                  m.retired ? "retired" : "live");
    }
  } else if (command == "stats") {
    const serve::ModelId id = parse_model(remote, arg("model"));
    std::printf("%s", serve::to_string(remote.stats(id)).c_str());
  } else if (command == "pending") {
    const serve::ModelId id = parse_model(remote, arg("model"));
    std::printf("%zu\n", remote.pending(id));
  } else if (command == "class-stats") {
    const serve::Priority p = parse_class(arg("class"));
    std::printf("class %s:\n%s", serve::to_string(p),
                serve::to_string(remote.class_stats(p)).c_str());
  } else if (command == "metrics") {
    std::printf("%s", remote.metrics_text().c_str());
  } else if (command == "health") {
    print_health(remote.shard_ctl(net::ShardVerb::kHealth));
  } else if (command == "drain") {
    print_health(
        remote.shard_ctl(net::ShardVerb::kDrain, parse_shard(arg("shard"))));
  } else if (command == "restart") {
    print_health(remote.shard_ctl(net::ShardVerb::kRestart,
                                  parse_shard(arg("shard"))));
  } else if (command == "kill") {
    print_health(
        remote.shard_ctl(net::ShardVerb::kKill, parse_shard(arg("shard"))));
  } else if (command == "save") {
    const serve::ModelId id = parse_model(remote, arg("model"));
    RADIX_REQUIRE(rest.size() >= 3, "missing argument: path");
    const std::uint64_t bytes = remote.save_model(id, rest[2]);
    std::printf("saved model %llu to %s (%llu bytes)\n",
                static_cast<unsigned long long>(id), rest[2].c_str(),
                static_cast<unsigned long long>(bytes));
  } else if (command == "load") {
    const std::string& path = arg("path");
    const std::string name = rest.size() >= 3 ? rest[2] : "";
    const serve::ModelId id = remote.load_model(path, name);
    std::printf("loaded %s as model %llu\n", path.c_str(),
                static_cast<unsigned long long>(id));
  } else if (command == "infer-hash") {
    // Deterministic end-to-end probe: a fixed-seed synthetic batch sized
    // to the model's input width, hashed output.  The warm-restart smoke
    // compares these hashes across a daemon kill/restart -- they match
    // iff the restarted server serves a bit-identical model.
    const serve::ModelId id = parse_model(remote, arg("model"));
    const index_t rows = rest.size() >= 3
                             ? static_cast<index_t>(std::stoul(rest[2]))
                             : index_t{4};
    index_t width = 0;
    for (const net::WireModelInfo& m : remote.list_models()) {
      if (m.id == id) width = static_cast<index_t>(m.input_width);
    }
    RADIX_REQUIRE(width > 0, "model has no registered input width");
    Rng rng(1234);
    const std::vector<float> input =
        gc::synthetic_input(rows, width, 0.3, rng);
    auto result =
        remote.submit(serve::InferenceRequest::borrowed(id, input, rows));
    RADIX_REQUIRE(result.admitted(), "inference rejected");
    const std::vector<float> output = result.get();
    std::printf("%016llx\n",
                static_cast<unsigned long long>(store::xxh64(
                    output.data(), output.size() * sizeof(float))));
  } else if (command == "shutdown") {
    remote.server_shutdown();
    std::printf("shutdown requested\n");
  } else {
    std::fprintf(stderr, "radix-ctl: unknown command '%s'\n",
                 command.c_str());
    return 2;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  args.add_flag("port", "", "radix-served port on 127.0.0.1 (required)");
  try {
    args.parse(argc, argv);
    RADIX_REQUIRE(!args.get("port").empty(), "--port is required");
    RADIX_REQUIRE(!args.positional().empty(), "missing command");
  } catch (const Error& e) {
    std::fprintf(stderr, "%s\n%s", e.what(), args.usage("radix-ctl").c_str());
    return 2;
  }

  try {
    net::RemoteBackend remote(
        static_cast<std::uint16_t>(args.get_int("port")));
    return run(remote, args.positional().front(), args.positional());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "radix-ctl: %s\n", e.what());
    return 1;
  }
}

// Graph-Challenge-style sparse DNN inference on a RadiX-Net preset.
//
//   $ ./graph_challenge_inference [neurons] [layers] [batch]
//
// Builds the preset network (shuffled neuron ids, uniform 1/16 weights,
// published bias), runs a synthetic activation batch through the
// challenge rule Y <- min(32, ReLU(Y W + b)), and reports the standard
// edges/second metric plus the surviving-row count per layer depth.
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "infer/sparse_dnn.hpp"
#include "radixnet/graph_challenge.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace radix;

  const index_t neurons =
      argc > 1 ? static_cast<index_t>(std::atoi(argv[1])) : 1024;
  const std::size_t layers =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 12;
  const index_t batch =
      argc > 3 ? static_cast<index_t>(std::atoi(argv[3])) : 64;

  if (!gc::is_supported_width(neurons)) {
    std::fprintf(stderr,
                 "unsupported width %u (choose 1024/4096/16384/65536)\n",
                 neurons);
    return 2;
  }

  std::printf("building RadiX-Net challenge network: %u neurons x %zu "
              "layers\n",
              neurons, layers);
  Rng rng(2019);  // challenge year
  const auto net = gc::network(neurons, layers, &rng);
  infer::SparseDnn dnn(net.layers, net.bias, gc::kClamp);
  std::printf("total weights: %llu, bias %.2f, weight %.4f\n\n",
              static_cast<unsigned long long>(dnn.total_nnz()), net.bias,
              gc::kWeight);

  Rng input_rng(7);
  const auto x = gc::synthetic_input(batch, neurons, 0.4, input_rng);

  infer::InferenceStats stats;
  const auto y = dnn.forward(x, batch, &stats);
  const auto active = infer::SparseDnn::active_rows(y, batch, neurons);

  Table t({"metric", "value"});
  t.add_row({"batch", std::to_string(batch)});
  t.add_row({"wall seconds", Table::fmt(stats.wall_seconds, 4)});
  t.add_row({"edges processed",
             std::to_string(stats.edges_processed)});
  t.add_row({"edges / second", Table::fmt_sci(stats.edges_per_second, 3)});
  t.add_row({"active rows at output",
             std::to_string(active.size()) + " / " + std::to_string(batch)});
  t.add_row({"nonzero outputs", std::to_string(stats.nonzero_outputs)});
  t.print(std::cout);
  return 0;
}

// Coordinate-format sparse matrix (triple list).
//
// COO is the assembly format: generators append (row, col, val) triples in
// any order, possibly with duplicates, and convert once to CSR for
// computation.  Csr<T>::from_coo performs the canonicalization (sort +
// duplicate combination).
#pragma once

#include <cstddef>
#include <vector>

#include "sparse/types.hpp"
#include "support/error.hpp"

namespace radix {

template <typename T>
struct Coo {
  index_t rows = 0;
  index_t cols = 0;
  std::vector<index_t> row;
  std::vector<index_t> col;
  std::vector<T> val;

  Coo() = default;
  Coo(index_t r, index_t c) : rows(r), cols(c) {}

  std::size_t nnz() const noexcept { return row.size(); }

  /// Append one entry; bounds-checked.
  void push(index_t r, index_t c, T v) {
    RADIX_REQUIRE_DIM(r < rows && c < cols, "Coo::push: index out of range");
    row.push_back(r);
    col.push_back(c);
    val.push_back(v);
  }

  void reserve(std::size_t n) {
    row.reserve(n);
    col.reserve(n);
    val.reserve(n);
  }

  void clear() noexcept {
    row.clear();
    col.clear();
    val.clear();
  }
};

}  // namespace radix

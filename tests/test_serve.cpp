// End-to-end tests of the serving engine behind the unified front-end
// API (serve/request.hpp + serve/backend.hpp): batched results must be
// bit-identical to direct SparseDnn::forward of the same rows (batch
// rows are independent under the challenge rule, so coalescing must not
// change values), across future and callback completion, borrowed and
// owned inputs, all three admission modes, multiple models, graceful
// shutdown drain, model lookup by name, and the stats surface.
#include "serve/engine.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "radixnet/graph_challenge.hpp"
#include "serve/client.hpp"
#include "serve/stats.hpp"
#include "support/random.hpp"

namespace radix::serve {
namespace {

using namespace std::chrono_literals;

struct TestModel {
  std::shared_ptr<infer::SparseDnn> dnn;
  index_t width = 0;
};

TestModel make_model(index_t neurons, std::size_t layers, std::uint64_t seed) {
  Rng rng(seed);
  const auto net = gc::network(neurons, layers, &rng);
  TestModel m;
  m.dnn = std::make_shared<infer::SparseDnn>(net.layers, net.bias, gc::kClamp);
  m.width = neurons;
  return m;
}

/// Direct (unbatched) forward of `rows` rows -- the ground truth the
/// engine must match bit-exactly however it coalesces.
std::vector<float> direct_forward(const infer::SparseDnn& dnn,
                                  const std::vector<float>& input,
                                  index_t rows) {
  infer::InferenceWorkspace ws;
  const auto y = dnn.forward(input.data(), rows, ws);
  return {y.begin(), y.end()};
}

TEST(ServeEngine, SingleRequestMatchesDirectForward) {
  const auto m = make_model(1024, 4, 1);
  Engine engine({.workers = 1});
  const auto id = engine.add_model(m.dnn, "gc-1024");
  EXPECT_EQ(engine.model_name(id), "gc-1024");

  Rng irng(3);
  const auto x = gc::synthetic_input(5, m.width, 0.4, irng);
  auto fut = engine.submit(InferenceRequest::borrowed(id, x, 5)).take_future();
  const auto got = fut.get();
  const auto want = direct_forward(*m.dnn, x, 5);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(got[i], want[i]) << "at " << i;
  }
}

TEST(ServeEngine, FindModelByNameAndDuplicateNamesRejected) {
  const auto m0 = make_model(1024, 2, 50);
  const auto m1 = make_model(1024, 2, 51);
  Engine engine({.workers = 1});
  const auto chat = engine.add_model(m0.dnn, "chat");
  const auto anon = engine.add_model(m1.dnn);  // generated name

  ASSERT_TRUE(engine.find_model("chat").has_value());
  EXPECT_EQ(engine.find_model("chat").value(), chat);
  ASSERT_TRUE(engine.find_model(engine.model_name(anon)).has_value());
  EXPECT_EQ(engine.find_model(engine.model_name(anon)).value(), anon);
  EXPECT_FALSE(engine.find_model("no-such-model").has_value());

  // Two models sharing one name would make stats ambiguous: rejected,
  // and the failed registration must not consume an id.
  EXPECT_THROW((void)engine.add_model(m1.dnn, "chat"), Error);
  EXPECT_EQ(engine.num_models(), 2u);
  const auto third = engine.add_model(m1.dnn, "chat-2");
  EXPECT_EQ(third, 2u);

  // Anonymous registration must dodge an explicitly taken "model-<n>"
  // name instead of failing.
  (void)engine.add_model(m1.dnn, "model-4");  // id 3, squats the next slot
  const auto anon2 = engine.add_model(m1.dnn);
  EXPECT_EQ(anon2, 4u);
  EXPECT_EQ(engine.model_name(anon2), "model-5");
  EXPECT_EQ(engine.find_model("model-5").value(), anon2);
}

TEST(ServeEngine, ManyConcurrentRequestsAreBitExactAndCoalesce) {
  const auto m = make_model(1024, 4, 2);
  Engine engine({.workers = 1,
                 .max_batch_rows = 16,
                 .max_delay = 5ms,
                 .queue_capacity = 256});
  const auto id = engine.add_model(m.dnn);

  // Per-request expected outputs computed row-by-row up front.
  constexpr index_t kRequests = 48;
  Rng irng(7);
  std::vector<std::vector<float>> inputs;
  std::vector<std::vector<float>> want;
  for (index_t i = 0; i < kRequests; ++i) {
    const index_t rows = 1 + i % 3;
    inputs.push_back(gc::synthetic_input(rows, m.width, 0.4, irng));
    want.push_back(direct_forward(*m.dnn, inputs.back(), rows));
  }

  std::vector<std::future<std::vector<float>>> futures;
  for (index_t i = 0; i < kRequests; ++i) {
    futures.push_back(
        engine.submit(InferenceRequest::borrowed(id, inputs[i], 1 + i % 3))
            .take_future());
  }
  for (index_t i = 0; i < kRequests; ++i) {
    const auto got = futures[i].get();
    ASSERT_EQ(got.size(), want[i].size()) << "request " << i;
    for (std::size_t j = 0; j < got.size(); ++j) {
      ASSERT_EQ(got[j], want[i][j]) << "request " << i << " at " << j;
    }
  }

  const ServeStats s = engine.stats(id);
  EXPECT_EQ(s.requests, kRequests);
  EXPECT_EQ(s.errors, 0u);
  EXPECT_EQ(s.rows, 48u + 48u / 3 * (1 + 2));  // sum of 1,2,3 pattern
  EXPECT_GE(s.batches, 1u);
  EXPECT_LT(s.batches, s.requests)
      << "with a 5ms window and one worker, some coalescing must happen";
  EXPECT_GT(s.edges_per_busy_second, 0.0);
  EXPECT_GT(s.mean_batch_rows, 1.0);
  std::uint64_t hist_total = 0;
  for (const auto& [bound, count] : s.batch_rows_histogram) {
    hist_total += count;
  }
  EXPECT_EQ(hist_total, s.batches);
}

TEST(ServeEngine, OwnedSubmitAndInputSizeValidation) {
  const auto m = make_model(1024, 2, 3);
  Engine engine({.workers = 1});
  const auto id = engine.add_model(m.dnn);

  Rng irng(9);
  auto x = gc::synthetic_input(2, m.width, 0.3, irng);
  const auto want = direct_forward(*m.dnn, x, 2);
  // Owned request: the engine carries the buffer, the caller's vector
  // is gone the moment the factory returns.
  auto fut = engine.submit(InferenceRequest::owned(id, std::move(x), 2))
                 .take_future();
  const auto got = fut.get();
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) ASSERT_EQ(got[i], want[i]);

  EXPECT_THROW(
      (void)engine.submit(
          InferenceRequest::owned(id, std::vector<float>(17, 0.0f), 2)),
      DimensionError)
      << "owned submit must validate rows * input_width";
  const std::vector<float> short_buf(m.width, 0.0f);
  EXPECT_THROW(
      (void)engine.submit(InferenceRequest::borrowed(id, short_buf, 2)),
      DimensionError)
      << "the borrowed span encodes its length, so size is validated too";
}

TEST(ServeEngine, CallbackCompletionDeliversSpanAndTiming) {
  const auto m = make_model(1024, 2, 4);
  Engine engine({.workers = 1, .max_delay = 0us});
  const auto id = engine.add_model(m.dnn);

  Rng irng(11);
  const auto x = gc::synthetic_input(3, m.width, 0.4, irng);
  const auto want = direct_forward(*m.dnn, x, 3);

  std::promise<void> done_promise;
  std::vector<float> got;
  RequestTiming timing;
  const auto res = engine.submit(
      InferenceRequest::borrowed(id, x, 3),
      {.done = [&](std::span<const float> y, const RequestTiming& t,
                   std::exception_ptr err) {
        EXPECT_EQ(err, nullptr);
        got.assign(y.begin(), y.end());
        timing = t;
        done_promise.set_value();
      }});
  EXPECT_TRUE(res.admitted());
  done_promise.get_future().wait();
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) ASSERT_EQ(got[i], want[i]);
  EXPECT_GE(timing.batch_rows, 3u);
  EXPECT_GE(timing.total_seconds, timing.queue_seconds);
}

TEST(ServeEngine, CallbackSubmitCarriesNoFuture) {
  const auto m = make_model(1024, 2, 12);
  Engine engine({.workers = 1, .max_delay = 0us});
  const auto id = engine.add_model(m.dnn);
  Rng irng(13);
  const auto x = gc::synthetic_input(1, m.width, 0.4, irng);

  std::promise<void> done;
  auto res = engine.submit(
      InferenceRequest::borrowed(id, x, 1),
      {.done = [&](std::span<const float>, const RequestTiming&,
                   std::exception_ptr) { done.set_value(); }});
  EXPECT_TRUE(res.admitted());
  EXPECT_FALSE(res.has_future());
  EXPECT_THROW((void)res.take_future(), Error);
  done.get_future().wait();
}

TEST(ServeEngine, ZeroRowSubmitCompletesImmediately) {
  const auto m = make_model(1024, 2, 5);
  Engine engine({.workers = 1});
  const auto id = engine.add_model(m.dnn);
  auto fut = engine.submit(InferenceRequest::borrowed(id, {}, 0))
                 .take_future();
  EXPECT_TRUE(fut.get().empty());
}

TEST(ServeEngine, ClientBindsBackendAndModel) {
  const auto m = make_model(1024, 2, 14);
  Engine engine({.workers = 1});
  const auto id = engine.add_model(m.dnn, "bound");

  Client client(engine, engine.find_model("bound").value());
  EXPECT_TRUE(client.bound());
  EXPECT_EQ(client.model(), id);
  EXPECT_EQ(&client.backend(), static_cast<Backend*>(&engine));

  Rng irng(15);
  const auto x = gc::synthetic_input(2, m.width, 0.4, irng);
  const auto want = direct_forward(*m.dnn, x, 2);
  // Borrowed (span) and owned (vector) wrappers funnel into the same
  // backend entry point.
  EXPECT_EQ(client.submit(x, 2).get(), want);
  EXPECT_EQ(client.submit(std::vector<float>(x), 2).get(), want);
  EXPECT_EQ(client.stats().requests, 2u);
  EXPECT_EQ(client.pending(), 0u);
}

TEST(ServeEngine, MultiModelRoutingAndStatsIsolation) {
  const auto m0 = make_model(1024, 4, 6);
  const auto m1 = make_model(4096, 3, 7);
  Engine engine({.workers = 2, .max_delay = 1ms});
  const auto id0 = engine.add_model(m0.dnn, "small");
  const auto id1 = engine.add_model(m1.dnn, "wide");
  EXPECT_EQ(engine.num_models(), 2u);

  Rng irng(13);
  const auto x0 = gc::synthetic_input(2, m0.width, 0.4, irng);
  const auto x1 = gc::synthetic_input(1, m1.width, 0.4, irng);
  const auto want0 = direct_forward(*m0.dnn, x0, 2);
  const auto want1 = direct_forward(*m1.dnn, x1, 1);

  std::vector<std::future<std::vector<float>>> f0, f1;
  for (int i = 0; i < 6; ++i) {
    f0.push_back(
        engine.submit(InferenceRequest::borrowed(id0, x0, 2)).take_future());
    f1.push_back(
        engine.submit(InferenceRequest::borrowed(id1, x1, 1)).take_future());
  }
  for (auto& f : f0) {
    const auto got = f.get();
    ASSERT_EQ(got.size(), want0.size());
    for (std::size_t i = 0; i < got.size(); ++i) ASSERT_EQ(got[i], want0[i]);
  }
  for (auto& f : f1) {
    const auto got = f.get();
    ASSERT_EQ(got.size(), want1.size());
    for (std::size_t i = 0; i < got.size(); ++i) ASSERT_EQ(got[i], want1[i]);
  }
  EXPECT_EQ(engine.stats(id0).requests, 6u);
  EXPECT_EQ(engine.stats(id1).requests, 6u);
  EXPECT_EQ(engine.stats(id0).rows, 12u);
  EXPECT_EQ(engine.stats(id1).rows, 6u);
}

TEST(ServeEngine, ShutdownDrainsEveryAcceptedRequest) {
  const auto m = make_model(1024, 4, 8);
  std::vector<std::future<std::vector<float>>> futures;
  std::vector<float> x;
  std::vector<float> want;
  {
    Engine engine({.workers = 1, .max_delay = 20ms});
    const auto id = engine.add_model(m.dnn);
    Rng irng(17);
    x = gc::synthetic_input(1, m.width, 0.4, irng);
    want = direct_forward(*m.dnn, x, 1);
    for (int i = 0; i < 32; ++i) {
      futures.push_back(
          engine.submit(InferenceRequest::borrowed(id, x, 1)).take_future());
    }
    engine.shutdown();  // must serve all 32 before returning
    EXPECT_FALSE(engine.accepting());
    EXPECT_FALSE(engine.submit(InferenceRequest::borrowed(id, x, 1)).admitted())
        << "submit after shutdown must be rejected, not served";
    EXPECT_EQ(engine.stats(id).requests, 32u);
  }  // destructor: second shutdown must be a no-op
  for (auto& f : futures) {
    const auto got = f.get();  // no broken promises
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i) ASSERT_EQ(got[i], want[i]);
  }
}

TEST(ServeEngine, ThrowingCallbackDoesNotKillWorkers) {
  const auto m = make_model(1024, 2, 10);
  Engine engine({.workers = 1, .max_delay = 0us});
  const auto id = engine.add_model(m.dnn);
  Rng irng(23);
  const auto x = gc::synthetic_input(1, m.width, 0.4, irng);

  std::promise<void> threw;
  (void)engine.submit(InferenceRequest::borrowed(id, x, 1),
                      {.done = [&](std::span<const float>,
                                   const RequestTiming&, std::exception_ptr) {
                        threw.set_value();
                        throw std::runtime_error("client bug");
                      }});
  threw.get_future().wait();
  // The worker must have survived the escaping exception and still
  // serve subsequent requests.
  auto fut = engine.submit(InferenceRequest::borrowed(id, x, 1)).take_future();
  EXPECT_EQ(fut.get(), direct_forward(*m.dnn, x, 1));
}

TEST(ServeEngine, ConcurrentAddModelKeepsIdsConsistent) {
  // add_model is documented safe while traffic is served: registry and
  // batcher ids must stay in lockstep under concurrent registration,
  // and every id must route to its own model.
  std::vector<TestModel> models;
  for (std::uint64_t s = 0; s < 4; ++s) models.push_back(make_model(1024, 2, 20 + s));

  Engine engine({.workers = 2, .max_delay = 0us});
  std::vector<ModelId> ids(4);
  {
    std::vector<std::thread> registrars;
    for (int t = 0; t < 4; ++t) {
      registrars.emplace_back([&, t] {
        ids[static_cast<std::size_t>(t)] = engine.add_model(
            models[static_cast<std::size_t>(t)].dnn,
            "model-t" + std::to_string(t));
      });
    }
    for (auto& th : registrars) th.join();
  }
  EXPECT_EQ(engine.num_models(), 4u);
  Rng irng(29);
  const auto x = gc::synthetic_input(1, 1024, 0.4, irng);
  for (int t = 0; t < 4; ++t) {
    const auto id = ids[static_cast<std::size_t>(t)];
    EXPECT_EQ(engine.find_model("model-t" + std::to_string(t)).value(), id);
    auto fut =
        engine.submit(InferenceRequest::borrowed(id, x, 1)).take_future();
    EXPECT_EQ(fut.get(),
              direct_forward(*models[static_cast<std::size_t>(t)].dnn, x, 1))
        << "model id " << id << " routed to the wrong model";
  }
}

TEST(ServeEngine, StatsPercentilesAreOrdered) {
  const auto m = make_model(1024, 2, 9);
  Engine engine({.workers = 1, .max_delay = 1ms});
  const auto id = engine.add_model(m.dnn);
  Rng irng(19);
  const auto x = gc::synthetic_input(1, m.width, 0.4, irng);
  std::vector<std::future<std::vector<float>>> futures;
  for (int i = 0; i < 20; ++i) {
    futures.push_back(
        engine.submit(InferenceRequest::borrowed(id, x, 1)).take_future());
  }
  for (auto& f : futures) (void)f.get();

  const ServeStats s = engine.stats(id);
  EXPECT_GT(s.e2e_p50, 0.0);
  EXPECT_LE(s.queue_wait_p50, s.queue_wait_p95);
  EXPECT_LE(s.queue_wait_p95, s.queue_wait_p99);
  EXPECT_LE(s.e2e_p50, s.e2e_p95);
  EXPECT_LE(s.e2e_p95, s.e2e_p99);
  EXPECT_LE(s.e2e_p99, std::max(s.e2e_max, s.e2e_p99));
  EXPECT_FALSE(to_string(s).empty());
}

TEST(ServeEngineQos, ModelPolicyResolvesClassOverridesThenDefaults) {
  const auto m = make_model(1024, 2, 30);
  EngineOptions opts;
  opts.workers = 1;
  opts.max_batch_rows = 64;
  opts.max_delay = 300us;
  opts.class_policy[static_cast<std::size_t>(Priority::kInteractive)] = {
      .max_delay = 50us, .max_batch_rows = 4};
  Engine engine(opts);

  const auto plain = engine.add_model(m.dnn, "plain");
  const auto chat = engine.add_model(
      m.dnn, "chat", {.priority = Priority::kInteractive, .weight = 4});
  const auto custom = engine.add_model(
      m.dnn, "custom",
      {.priority = Priority::kInteractive, .max_delay = 10us});

  // Engine defaults for an un-overridden batch-class model.
  EXPECT_EQ(engine.model_policy(plain).priority, Priority::kBatch);
  EXPECT_EQ(engine.model_policy(plain).weight, 1u);
  EXPECT_EQ(engine.model_policy(plain).max_delay, 300us);
  EXPECT_EQ(engine.model_policy(plain).max_batch_rows, 64u);
  // Class override fills unset per-model fields.
  EXPECT_EQ(engine.model_policy(chat).max_delay, 50us);
  EXPECT_EQ(engine.model_policy(chat).max_batch_rows, 4u);
  EXPECT_EQ(engine.model_policy(chat).weight, 4u);
  // A per-model value beats the class override.
  EXPECT_EQ(engine.model_policy(custom).max_delay, 10us);
  EXPECT_EQ(engine.model_policy(custom).max_batch_rows, 4u);
}

TEST(ServeEngineQos, ClassStatsAggregatePerPriority) {
  const auto m0 = make_model(1024, 2, 31);
  const auto m1 = make_model(1024, 2, 32);
  Engine engine({.workers = 2, .max_delay = 0us});
  const auto chat = engine.add_model(
      m0.dnn, "chat", {.priority = Priority::kInteractive});
  const auto bulk = engine.add_model(
      m1.dnn, "bulk", {.priority = Priority::kBackground});

  Rng irng(33);
  const auto x = gc::synthetic_input(1, 1024, 0.4, irng);
  std::vector<std::future<std::vector<float>>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(
        engine.submit(InferenceRequest::borrowed(chat, x, 1)).take_future());
  }
  for (int i = 0; i < 3; ++i) {
    futures.push_back(
        engine.submit(InferenceRequest::borrowed(bulk, x, 1)).take_future());
  }
  for (auto& f : futures) (void)f.get();

  const ServeStats si = engine.class_stats(Priority::kInteractive);
  const ServeStats sb = engine.class_stats(Priority::kBackground);
  EXPECT_EQ(si.requests, 8u);
  EXPECT_EQ(sb.requests, 3u);
  EXPECT_EQ(engine.class_stats(Priority::kBatch).requests, 0u);
  EXPECT_EQ(si.errors + sb.errors, 0u);
  EXPECT_GT(si.edges_per_busy_second, 0.0);
  // The per-class view aggregates what the per-model collectors saw.
  EXPECT_EQ(si.rows, engine.stats(chat).rows);
  EXPECT_EQ(sb.rows, engine.stats(bulk).rows);
}

TEST(ServeEngineQos, FailFastAdmissionOnFullQueueThenRecovers) {
  const auto m = make_model(1024, 2, 34);
  Engine engine({.workers = 1, .max_delay = 0us, .queue_capacity = 2});
  const auto id = engine.add_model(m.dnn);
  Rng irng(35);
  const auto x = gc::synthetic_input(1, m.width, 0.4, irng);

  // Park the lone worker inside a completion callback so the queue
  // stays deterministically full while we probe admission.
  std::promise<void> worker_parked;
  std::promise<void> release_worker;
  auto release_future = release_worker.get_future();
  (void)engine.submit(InferenceRequest::borrowed(id, x, 1),
                      {.done = [&](std::span<const float>,
                                   const RequestTiming&, std::exception_ptr) {
                        worker_parked.set_value();
                        release_future.wait();
                      }});
  worker_parked.get_future().wait();

  // Fill the queue to capacity behind the parked worker.
  auto f1 = engine.submit(InferenceRequest::borrowed(id, x, 1)).take_future();
  auto f2 = engine.submit(InferenceRequest::borrowed(id, x, 1)).take_future();
  EXPECT_EQ(engine.pending(id), 2u);

  EXPECT_FALSE(
      engine
          .submit(InferenceRequest::borrowed(id, x, 1),
                  {.admission = Admission::kFailFast,
                   .done = [](std::span<const float>, const RequestTiming&,
                              std::exception_ptr) {
                     FAIL() << "rejected request must never complete";
                   }})
          .admitted())
      << "full queue must fail fast";
  EXPECT_FALSE(engine
                   .submit(InferenceRequest::borrowed(id, x, 1),
                           {.admission = Admission::kFailFast})
                   .admitted());
  EXPECT_FALSE(engine
                   .submit(InferenceRequest::borrowed(id, x, 1),
                           {.admission = Admission::kBoundedWait,
                            .timeout = 1000us})
                   .admitted())
      << "bounded wait must give up on a still-full queue";

  release_worker.set_value();  // worker drains the backlog
  const auto want = direct_forward(*m.dnn, x, 1);
  EXPECT_EQ(f1.get(), want);
  EXPECT_EQ(f2.get(), want);

  // With the queue drained, non-blocking admission succeeds again.
  auto r3 = engine.submit(InferenceRequest::borrowed(id, x, 1),
                          {.admission = Admission::kFailFast});
  ASSERT_TRUE(r3.admitted());
  EXPECT_EQ(r3.get(), want);

  engine.shutdown();
  EXPECT_FALSE(engine
                   .submit(InferenceRequest::borrowed(id, x, 1),
                           {.admission = Admission::kFailFast})
                   .admitted())
      << "fail-fast after shutdown reports rejection";
  EXPECT_FALSE(engine
                   .submit(InferenceRequest::borrowed(id, x, 1),
                           {.admission = Admission::kFailFast,
                            .done = [](std::span<const float>,
                                       const RequestTiming&,
                                       std::exception_ptr) {}})
                   .admitted());
}

TEST(ServeLog2Histogram, PercentileApproximation) {
  Log2Histogram h(1e-6);
  EXPECT_EQ(h.percentile(0.99), 0.0);
  for (int i = 0; i < 99; ++i) h.record(10e-6);  // ~10us
  h.record(10e-3);                               // one 10ms outlier
  EXPECT_EQ(h.count(), 100u);
  EXPECT_NEAR(h.mean(), 10e-6 * 0.99 + 10e-3 * 0.01, 1e-9);
  // p50 lands in the 10us bucket (bound 16us); p995+ sees the outlier.
  EXPECT_LE(h.percentile(0.50), 16e-6);
  EXPECT_GT(h.percentile(0.999), 1e-3);
  EXPECT_DOUBLE_EQ(h.max(), 10e-3);
}

}  // namespace
}  // namespace radix::serve

#include "graph/analysis.hpp"

#include "graph/properties.hpp"
#include "sparse/permutation.hpp"
#include "sparse/spgemm.hpp"
#include "support/error.hpp"
#include "support/random.hpp"

namespace radix {

index_t reachable_outputs(const Fnnt& g, index_t u) {
  RADIX_REQUIRE(g.depth() > 0, "reachable_outputs: empty topology");
  RADIX_REQUIRE(u < g.input_width(),
                "reachable_outputs: input node out of range");
  SparseVec<pattern_t> frontier =
      SparseVec<pattern_t>::unit(g.input_width(), u);
  for (std::size_t i = 0; i < g.depth(); ++i) {
    frontier = frontier_step(frontier, g.layer(i));
  }
  return static_cast<index_t>(frontier.nnz());
}

std::vector<index_t> reachable_outputs_all(const Fnnt& g) {
  std::vector<index_t> out(g.input_width());
  for (index_t u = 0; u < g.input_width(); ++u) {
    out[u] = reachable_outputs(g, u);
  }
  return out;
}

std::vector<index_t> frontier_profile(const Fnnt& g, index_t u) {
  RADIX_REQUIRE(g.depth() > 0, "frontier_profile: empty topology");
  RADIX_REQUIRE(u < g.input_width(),
                "frontier_profile: input node out of range");
  std::vector<index_t> profile;
  profile.reserve(g.depth() + 1);
  SparseVec<pattern_t> frontier =
      SparseVec<pattern_t>::unit(g.input_width(), u);
  profile.push_back(1);
  for (std::size_t i = 0; i < g.depth(); ++i) {
    frontier = frontier_step(frontier, g.layer(i));
    profile.push_back(static_cast<index_t>(frontier.nnz()));
  }
  return profile;
}

SparseVec<BigUInt> path_counts_from(const Fnnt& g, index_t u) {
  RADIX_REQUIRE(g.depth() > 0, "path_counts_from: empty topology");
  RADIX_REQUIRE(u < g.input_width(),
                "path_counts_from: input node out of range");
  SparseVec<BigUInt> counts =
      SparseVec<BigUInt>::unit(g.input_width(), u, BigUInt(1));
  for (std::size_t i = 0; i < g.depth(); ++i) {
    const auto layer =
        g.layer(i).map<BigUInt>([](pattern_t) { return BigUInt(1); });
    counts = vxm<CountSemiring>(counts, layer);
  }
  return counts;
}

PathStats path_stats(const Fnnt& g) {
  PathStats stats;
  bool first = true;
  double total = 0.0;
  const std::uint64_t pairs =
      static_cast<std::uint64_t>(g.input_width()) * g.output_width();
  for (index_t u = 0; u < g.input_width(); ++u) {
    const auto counts = path_counts_from(g, u);
    stats.zero_pairs += g.output_width() - counts.nnz();
    for (const BigUInt& v : counts.values()) {
      if (first) {
        stats.min = v;
        stats.max = v;
        first = false;
      } else {
        if (v < stats.min) stats.min = v;
        if (stats.max < v) stats.max = v;
      }
      total += v.to_double();
    }
  }
  stats.mean = pairs > 0 ? total / static_cast<double>(pairs) : 0.0;
  return stats;
}

std::map<index_t, index_t> out_degree_histogram(
    const Csr<pattern_t>& layer) {
  std::map<index_t, index_t> h;
  for (index_t r = 0; r < layer.rows(); ++r) {
    ++h[static_cast<index_t>(layer.row_nnz(r))];
  }
  return h;
}

std::map<index_t, index_t> in_degree_histogram(const Csr<pattern_t>& layer) {
  std::vector<index_t> indeg(layer.cols(), 0);
  for (index_t c : layer.colind()) ++indeg[c];
  std::map<index_t, index_t> h;
  for (index_t d : indeg) ++h[d];
  return h;
}

Fnnt reverse(const Fnnt& g) {
  RADIX_REQUIRE(g.depth() > 0, "reverse: empty topology");
  std::vector<Csr<pattern_t>> layers;
  layers.reserve(g.depth());
  for (std::size_t i = g.depth(); i-- > 0;) {
    layers.push_back(g.layer(i).transpose());
  }
  return Fnnt(std::move(layers));
}

Fnnt relabel(const Fnnt& g, const std::vector<std::vector<index_t>>& perms) {
  const auto widths = g.widths();
  RADIX_REQUIRE(perms.size() == widths.size(),
                "relabel: need one permutation per node layer");
  for (std::size_t i = 0; i < perms.size(); ++i) {
    RADIX_REQUIRE(perms[i].size() == widths[i],
                  "relabel: permutation size mismatch at layer " +
                      std::to_string(i));
  }
  // New layer i = P_i^T * W_i * P_{i+1}, with P the row->new-id matrix;
  // equivalently relabel sources by inverse perm and targets by perm.
  std::vector<Csr<pattern_t>> layers;
  layers.reserve(g.depth());
  for (std::size_t i = 0; i < g.depth(); ++i) {
    const auto& w = g.layer(i);
    Coo<pattern_t> coo(w.rows(), w.cols());
    coo.reserve(w.nnz());
    for (index_t r = 0; r < w.rows(); ++r) {
      for (index_t c : w.row_cols(r)) {
        coo.push(perms[i][r], perms[i + 1][c], 1);
      }
    }
    layers.push_back(Csr<pattern_t>::from_coo(coo));
  }
  return Fnnt(std::move(layers));
}

Fnnt drop_edges(const Fnnt& g, double p, std::uint64_t seed) {
  RADIX_REQUIRE(p >= 0.0 && p <= 1.0, "drop_edges: p must be in [0, 1]");
  Rng rng(seed);
  std::vector<Csr<pattern_t>> layers;
  layers.reserve(g.depth());
  for (std::size_t i = 0; i < g.depth(); ++i) {
    const auto& w = g.layer(i);
    Coo<pattern_t> coo(w.rows(), w.cols());
    for (index_t r = 0; r < w.rows(); ++r) {
      for (index_t c : w.row_cols(r)) {
        if (!rng.bernoulli(p)) coo.push(r, c, 1);
      }
    }
    layers.push_back(Csr<pattern_t>::from_coo(coo));
  }
  return Fnnt(std::move(layers));
}

double connected_pair_fraction(const Fnnt& g) {
  const auto r = reachability_matrix(g);
  const double pairs = static_cast<double>(r.rows()) * r.cols();
  return pairs > 0.0 ? static_cast<double>(r.nnz()) / pairs : 0.0;
}

Fnnt shuffle_interior(const Fnnt& g, std::uint64_t seed) {
  Rng rng(seed);
  const auto widths = g.widths();
  std::vector<std::vector<index_t>> perms(widths.size());
  for (std::size_t i = 0; i < widths.size(); ++i) {
    if (i == 0 || i + 1 == widths.size()) {
      perms[i].resize(widths[i]);
      for (index_t k = 0; k < widths[i]; ++k) perms[i][k] = k;
    } else {
      const auto p = rng.permutation(widths[i]);
      perms[i].assign(p.begin(), p.end());
    }
  }
  return relabel(g, perms);
}

}  // namespace radix

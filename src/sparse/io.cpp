#include "sparse/io.hpp"

#include <algorithm>
#include <array>
#include <fstream>
#include <sstream>

#include "support/error.hpp"

namespace radix {

namespace {

template <typename T>
void write_tsv_impl(const std::string& path, const Csr<T>& m) {
  std::ofstream out(path);
  if (!out) throw IoError("cannot open for writing: " + path);
  out << "%%shape " << m.rows() << ' ' << m.cols() << '\n';
  for (index_t r = 0; r < m.rows(); ++r) {
    auto cols = m.row_cols(r);
    auto vals = m.row_vals(r);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      out << (r + 1) << '\t' << (cols[k] + 1) << '\t'
          << static_cast<double>(vals[k]) << '\n';
    }
  }
  if (!out) throw IoError("write failed: " + path);
}

struct ParsedTsv {
  index_t rows = 0, cols = 0;
  Coo<double> coo;
};

ParsedTsv parse_tsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw IoError("cannot open for reading: " + path);
  ParsedTsv parsed;
  std::string line;
  bool have_shape = false;
  // First pass collects triples; shape header may pin dimensions.
  std::vector<std::array<double, 3>> triples;
  std::size_t lineno = 0;
  index_t max_r = 0, max_c = 0;
  // Line numbers of the entries that set max_r / max_c, so an entry
  // outside the declared %%shape is reported at its own line.
  std::size_t max_r_line = 0, max_c_line = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    if (line.rfind("%%shape", 0) == 0) {
      std::istringstream ss(line.substr(7));
      if (!(ss >> parsed.rows >> parsed.cols))
        throw IoError(path + ":" + std::to_string(lineno) +
                      ": bad %%shape header");
      have_shape = true;
      continue;
    }
    if (line[0] == '%' || line[0] == '#') continue;
    std::istringstream ss(line);
    double r, c, v;
    if (!(ss >> r >> c >> v))
      throw IoError(path + ":" + std::to_string(lineno) + ": parse error");
    if (r < 1 || c < 1)
      throw IoError(path + ":" + std::to_string(lineno) +
                    ": indices must be 1-based positive");
    triples.push_back({r, c, v});
    if (static_cast<index_t>(r) > max_r) {
      max_r = static_cast<index_t>(r);
      max_r_line = lineno;
    }
    if (static_cast<index_t>(c) > max_c) {
      max_c = static_cast<index_t>(c);
      max_c_line = lineno;
    }
  }
  if (!have_shape) {
    parsed.rows = max_r;
    parsed.cols = max_c;
  } else if (max_r > parsed.rows || max_c > parsed.cols) {
    const std::size_t bad_line =
        max_r > parsed.rows ? max_r_line : max_c_line;
    throw IoError(path + ":" + std::to_string(bad_line) +
                  ": entry outside declared %%shape");
  }
  parsed.coo = Coo<double>(parsed.rows, parsed.cols);
  parsed.coo.reserve(triples.size());
  for (const auto& t : triples) {
    parsed.coo.push(static_cast<index_t>(t[0]) - 1,
                    static_cast<index_t>(t[1]) - 1, t[2]);
  }
  return parsed;
}

}  // namespace

void write_tsv(const std::string& path, const Csr<float>& m) {
  write_tsv_impl(path, m);
}

void write_tsv(const std::string& path, const Csr<pattern_t>& m) {
  write_tsv_impl(path, m);
}

Csr<float> read_tsv_f32(const std::string& path) {
  ParsedTsv parsed = parse_tsv(path);
  Csr<double> d = Csr<double>::from_coo(parsed.coo);
  return d.map<float>([](double v) { return static_cast<float>(v); });
}

Csr<pattern_t> read_tsv_pattern(const std::string& path) {
  ParsedTsv parsed = parse_tsv(path);
  Csr<double> d = Csr<double>::from_coo(parsed.coo);
  return d.pattern();
}

void write_layer_stack(const std::string& prefix,
                       const std::vector<Csr<pattern_t>>& layers) {
  std::ofstream meta(prefix + "-meta.txt");
  if (!meta) throw IoError("cannot open for writing: " + prefix + "-meta.txt");
  meta << layers.size() << '\n';
  for (const auto& l : layers) meta << l.rows() << ' ' << l.cols() << '\n';
  for (std::size_t i = 0; i < layers.size(); ++i) {
    write_tsv(prefix + "-layer" + std::to_string(i) + ".tsv", layers[i]);
  }
}

std::vector<Csr<pattern_t>> read_layer_stack(const std::string& prefix) {
  std::ifstream meta(prefix + "-meta.txt");
  if (!meta) throw IoError("cannot open for reading: " + prefix + "-meta.txt");
  std::size_t n = 0;
  if (!(meta >> n)) throw IoError(prefix + "-meta.txt:1: bad layer count");
  std::vector<Csr<pattern_t>> layers;
  layers.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    index_t r, c;
    // Meta line i+2 carries layer i's shape (line 1 is the count).
    if (!(meta >> r >> c))
      throw IoError(prefix + "-meta.txt:" + std::to_string(i + 2) +
                    ": bad shape");
    const std::string layer_path =
        prefix + "-layer" + std::to_string(i) + ".tsv";
    Csr<pattern_t> layer = read_tsv_pattern(layer_path);
    if (layer.rows() != r || layer.cols() != c) {
      throw IoError(layer_path + ": shape " + std::to_string(layer.rows()) +
                    "x" + std::to_string(layer.cols()) + " disagrees with " +
                    prefix + "-meta.txt:" + std::to_string(i + 2) +
                    " (expected " + std::to_string(r) + "x" +
                    std::to_string(c) + ")");
    }
    layers.push_back(std::move(layer));
  }
  return layers;
}

}  // namespace radix

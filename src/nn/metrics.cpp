#include "nn/metrics.hpp"

#include "support/error.hpp"

namespace radix::nn {

double accuracy(const std::vector<std::int32_t>& predictions,
                const std::vector<std::int32_t>& labels) {
  RADIX_REQUIRE_DIM(predictions.size() == labels.size(),
                    "accuracy: size mismatch");
  RADIX_REQUIRE(!labels.empty(), "accuracy: empty inputs");
  std::size_t hits = 0;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (predictions[i] == labels[i]) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(labels.size());
}

std::vector<std::vector<std::uint32_t>> confusion_matrix(
    const std::vector<std::int32_t>& predictions,
    const std::vector<std::int32_t>& labels, index_t classes) {
  RADIX_REQUIRE_DIM(predictions.size() == labels.size(),
                    "confusion_matrix: size mismatch");
  std::vector<std::vector<std::uint32_t>> m(
      classes, std::vector<std::uint32_t>(classes, 0));
  for (std::size_t i = 0; i < labels.size(); ++i) {
    RADIX_REQUIRE(labels[i] >= 0 &&
                      static_cast<index_t>(labels[i]) < classes &&
                      predictions[i] >= 0 &&
                      static_cast<index_t>(predictions[i]) < classes,
                  "confusion_matrix: class out of range");
    ++m[labels[i]][predictions[i]];
  }
  return m;
}

ClassMetrics per_class_metrics(const std::vector<std::int32_t>& predictions,
                               const std::vector<std::int32_t>& labels,
                               index_t classes) {
  const auto cm = confusion_matrix(predictions, labels, classes);
  ClassMetrics m;
  m.precision.resize(classes, 0.0);
  m.recall.resize(classes, 0.0);
  m.f1.resize(classes, 0.0);
  for (index_t c = 0; c < classes; ++c) {
    std::uint64_t tp = cm[c][c];
    std::uint64_t predicted = 0, actual = 0;
    for (index_t k = 0; k < classes; ++k) {
      predicted += cm[k][c];
      actual += cm[c][k];
    }
    if (predicted > 0) {
      m.precision[c] = static_cast<double>(tp) / predicted;
    }
    if (actual > 0) {
      m.recall[c] = static_cast<double>(tp) / actual;
    }
    const double pr = m.precision[c] + m.recall[c];
    if (pr > 0.0) {
      m.f1[c] = 2.0 * m.precision[c] * m.recall[c] / pr;
    }
    m.macro_precision += m.precision[c];
    m.macro_recall += m.recall[c];
    m.macro_f1 += m.f1[c];
  }
  m.macro_precision /= classes;
  m.macro_recall /= classes;
  m.macro_f1 /= classes;
  return m;
}

}  // namespace radix::nn

// E3 -- Fig 5 / Fig 6 reproduction: the full RadiX-Net generator.
//
// Fig 5 illustrates the Kronecker stage with dense widths D = (3, 5, 4, 2)
// wrapped around three mixed-radix factors; Fig 6 gives the algorithm.
// We run the generator on that configuration, cross-check every layer
// against the direct edge-rule + explicit Kronecker construction, and
// verify the Theorem 1 invariants of the result.
#include <cstdio>
#include <iostream>

#include "graph/export.hpp"
#include "graph/properties.hpp"
#include "radixnet/analytics.hpp"
#include "radixnet/builder.hpp"
#include "radixnet/mrt.hpp"
#include "sparse/kron.hpp"
#include "support/table.hpp"

using namespace radix;

int main() {
  std::printf("== E3: Fig 5/6 -- RadiX-Net construction with "
              "D = (3,5,4,2) ==\n\n");

  // One mixed-radix system N = (3, 2, 2) (N' = 12) supplies the three
  // Kronecker factors W_1, W_2, W_3 of the Fig 5 sketch; D wraps the
  // boundaries.
  const std::vector<std::uint32_t> radices = {3, 2, 2};
  const std::vector<std::uint32_t> d = {3, 5, 4, 2};
  const RadixNetSpec spec({MixedRadix(radices)}, d);
  const Fnnt g = build_radix_net(spec);

  std::printf("spec: %s\n\n", spec.to_string().c_str());

  Table t({"layer", "W* shape", "W shape", "result", "nnz",
           "matches manual kron"});
  bool all_match = true;
  std::uint64_t pv = 1;
  for (std::size_t i = 0; i < g.depth(); ++i) {
    // Manual reconstruction: ones(D_{i-1}, D_i) (x) (sum_j P^(j*pv)).
    const auto w = mrt_submatrix(12, radices[i], pv);
    pv *= radices[i];
    const auto manual = kron(Csr<pattern_t>::ones(d[i], d[i + 1]), w);
    const bool match = manual == g.layer(i);
    all_match = all_match && match;
    t.add_row({std::to_string(i + 1),
               std::to_string(d[i]) + "x" + std::to_string(d[i + 1]),
               "12x12",
               std::to_string(g.layer(i).rows()) + "x" +
                   std::to_string(g.layer(i).cols()),
               std::to_string(g.layer(i).nnz()), match ? "yes" : "NO"});
  }
  t.print(std::cout);

  std::cout << "\n" << summarize(g);

  const auto sym = symmetry_constant(g);
  const BigUInt expected = predicted_path_count(spec);
  std::printf("\nvalid FNNT: %s\n", g.validate().ok ? "yes" : "NO");
  std::printf("path-connected: %s\n", is_path_connected(g) ? "yes" : "NO");
  std::printf("symmetric: %s, paths %s (Theorem 1 predicts %s)\n",
              sym.has_value() ? "yes" : "NO",
              sym.has_value() ? sym->to_decimal().c_str() : "-",
              expected.to_decimal().c_str());
  std::printf("density measured %.6f, eq.(4) %.6f\n", density(g),
              exact_density(spec));

  const bool ok = all_match && g.validate().ok && sym.has_value() &&
                  *sym == expected;
  std::printf("\npaper expectation: algorithm output == eq.(1) + eq.(3) "
              "manual construction, symmetric: %s\n",
              ok ? "REPRODUCED" : "MISMATCH");
  return ok ? 0 : 1;
}

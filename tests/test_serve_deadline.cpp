// Deterministic tests of the overload machinery on the injectable
// clock: end-to-end deadline expiry at claim time (a request expiring
// EXACTLY at its deadline is shed, not dispatched), priority-aware
// pressure shedding (background before batch before interactive,
// newest victim first), the per-class shed/expired counters, and the
// engine-level guarantee that an expired request never reaches a
// worker's forward pass.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "radixnet/graph_challenge.hpp"
#include "serve/batcher.hpp"
#include "serve/engine.hpp"
#include "serve/fault.hpp"
#include "support/random.hpp"
#include "support/thread.hpp"

namespace radix::serve {
namespace {

using namespace std::chrono_literals;

const float* tag(std::uint64_t seq) {
  return reinterpret_cast<const float*>(static_cast<std::uintptr_t>(seq));
}

std::uint64_t seq_of(const Request& r) {
  return static_cast<std::uint64_t>(reinterpret_cast<std::uintptr_t>(r.input));
}

Request make_request(index_t rows, std::uint64_t seq = 0) {
  Request r;
  r.rows = rows;
  r.input = tag(seq);
  return r;
}

// Real-time bounded spin for cross-thread rendezvous that virtual time
// cannot order (e.g. "the worker has parked in the fault wait").
template <typename Pred>
bool eventually(Pred&& pred, std::chrono::milliseconds budget = 5000ms) {
  const auto give_up = std::chrono::steady_clock::now() + budget;
  while (!pred()) {
    if (std::chrono::steady_clock::now() > give_up) return false;
    std::this_thread::sleep_for(200us);
  }
  return true;
}

// ---------------------------------------------------------------------------
// Batcher-level expiry at claim time.

TEST(BatcherDeadline, ExactDeadlineIsShedNotDispatched) {
  FakeClock clock;
  MicroBatcher b({.max_delay = 0us, .clock = &clock});
  const auto m = b.add_model({.priority = Priority::kInteractive});

  Request r = make_request(1, 7);
  r.deadline = clock.now() + 100us;
  ASSERT_TRUE(b.submit(m, std::move(r)));

  // The boundary case the issue pins down: now == deadline at claim
  // time means shed.  "Expiring exactly at the deadline" must not
  // dispatch -- the SLO is "completed BEFORE the deadline".
  clock.advance(100us);
  MicroBatcher::Batch out;
  ASSERT_TRUE(b.next(out));
  EXPECT_EQ(out.model, m);
  EXPECT_TRUE(out.requests.empty());
  EXPECT_EQ(out.rows, 0);
  ASSERT_EQ(out.expired.size(), 1u);
  EXPECT_EQ(seq_of(out.expired[0]), 7u);
  b.batch_complete(out.model);

  // One tick earlier the same request is live work.
  Request r2 = make_request(1, 8);
  r2.deadline = clock.now() + 100us;
  ASSERT_TRUE(b.submit(m, std::move(r2)));
  clock.advance(99us);
  ASSERT_TRUE(b.next(out));
  ASSERT_EQ(out.requests.size(), 1u);
  EXPECT_EQ(seq_of(out.requests[0]), 8u);
  EXPECT_TRUE(out.expired.empty());
  b.batch_complete(out.model);
  b.close();
}

TEST(BatcherDeadline, ExpiredAndLiveSplitWithinOneClaim) {
  FakeClock clock;
  MicroBatcher b({.max_batch_rows = 64, .max_delay = 0us, .clock = &clock});
  const auto m = b.add_model({});

  Request dead = make_request(2, 1);
  dead.deadline = clock.now() + 50us;
  Request live = make_request(3, 2);
  live.deadline = clock.now() + 10ms;
  ASSERT_TRUE(b.submit(m, std::move(dead)));
  ASSERT_TRUE(b.submit(m, std::move(live)));

  clock.advance(1ms);  // past dead's deadline, inside live's
  MicroBatcher::Batch out;
  ASSERT_TRUE(b.next(out));
  ASSERT_EQ(out.requests.size(), 1u);
  EXPECT_EQ(seq_of(out.requests[0]), 2u);
  EXPECT_EQ(out.rows, 3);  // expired rows are NOT part of the batch
  ASSERT_EQ(out.expired.size(), 1u);
  EXPECT_EQ(seq_of(out.expired[0]), 1u);
  b.batch_complete(out.model);
  b.close();
}

TEST(BatcherDeadline, RequestsExpiringDuringCoalescingWaitAreSwept) {
  FakeClock clock;
  MicroBatcher b({.max_batch_rows = 64, .max_delay = 500us, .clock = &clock});
  const auto m = b.add_model({});

  Request r = make_request(1, 3);
  r.deadline = clock.now() + 200us;  // inside the 500us coalescing window
  ASSERT_TRUE(b.submit(m, std::move(r)));

  MicroBatcher::Batch out;
  std::thread consumer([&] { ASSERT_TRUE(b.next(out)); });
  // The consumer claims the request live, then parks out the coalescing
  // window; the deadline passes mid-wait.  The post-wait sweep must
  // move it to `expired` rather than dispatch it late.
  ASSERT_TRUE(eventually([&] { return clock.parked() >= 1; }));
  clock.advance(500us);
  consumer.join();
  EXPECT_TRUE(out.requests.empty());
  EXPECT_EQ(out.rows, 0);
  ASSERT_EQ(out.expired.size(), 1u);
  EXPECT_EQ(seq_of(out.expired[0]), 3u);
  b.batch_complete(out.model);
  b.close();
}

// ---------------------------------------------------------------------------
// Batcher-level pressure shedding.

TEST(BatcherShed, DropsNewestOfLowestBackloggedClassFirst) {
  FakeClock clock;
  MicroBatcher b({.queue_capacity = 16,
                  .max_delay = 0us,
                  .shed_capacity = 4,
                  .clock = &clock});
  const auto bg = b.add_model({.priority = Priority::kBackground});
  const auto ba = b.add_model({.priority = Priority::kBatch});
  const auto ia = b.add_model({.priority = Priority::kInteractive});

  MicroBatcher::ShedList shed;
  // Distinct enqueue stamps so "newest" is well defined.
  ASSERT_TRUE(b.submit(bg, make_request(1, 101), &shed));
  clock.advance(1us);
  ASSERT_TRUE(b.submit(bg, make_request(1, 102), &shed));
  clock.advance(1us);
  ASSERT_TRUE(b.submit(ba, make_request(1, 201), &shed));
  clock.advance(1us);
  ASSERT_TRUE(b.submit(ba, make_request(1, 202), &shed));
  clock.advance(1us);
  EXPECT_TRUE(shed.empty());  // at capacity, nothing over it yet

  // Interactive arrivals shed background first (newest first), then
  // batch -- never interactive.
  ASSERT_TRUE(b.submit(ia, make_request(1, 301), &shed));
  ASSERT_EQ(shed.size(), 1u);
  EXPECT_EQ(shed[0].first, bg);
  EXPECT_EQ(seq_of(shed[0].second), 102u);
  shed.clear();

  ASSERT_TRUE(b.submit(ia, make_request(1, 302), &shed));
  ASSERT_EQ(shed.size(), 1u);
  EXPECT_EQ(shed[0].first, bg);
  EXPECT_EQ(seq_of(shed[0].second), 101u);
  shed.clear();

  ASSERT_TRUE(b.submit(ia, make_request(1, 303), &shed));
  ASSERT_EQ(shed.size(), 1u);
  EXPECT_EQ(shed[0].first, ba);
  EXPECT_EQ(seq_of(shed[0].second), 202u);
  shed.clear();

  ASSERT_TRUE(b.submit(ia, make_request(1, 304), &shed));
  ASSERT_EQ(shed.size(), 1u);
  EXPECT_EQ(shed[0].first, ba);
  EXPECT_EQ(seq_of(shed[0].second), 201u);
  shed.clear();

  // Only interactive is backlogged now: an incoming interactive has no
  // strictly lower class to shed, so it sheds ITSELF (still admitted --
  // the caller completes it with DeadlineExceededError).
  ASSERT_TRUE(b.submit(ia, make_request(1, 305), &shed));
  ASSERT_EQ(shed.size(), 1u);
  EXPECT_EQ(shed[0].first, ia);
  EXPECT_EQ(seq_of(shed[0].second), 305u);
  shed.clear();

  // Same for an incoming background request: nothing sits below it.
  ASSERT_TRUE(b.try_submit(bg, make_request(1, 106), &shed));
  ASSERT_EQ(shed.size(), 1u);
  EXPECT_EQ(shed[0].first, bg);
  EXPECT_EQ(seq_of(shed[0].second), 106u);
  shed.clear();

  // The survivors -- and ONLY the survivors -- are dispatched: the four
  // interactive requests that displaced the lower classes, in FIFO
  // order.  No shed victim ever reaches a consumer.
  std::vector<std::uint64_t> served;
  MicroBatcher::Batch out;
  while (served.size() < 4) {
    ASSERT_TRUE(b.next(out));
    EXPECT_EQ(out.model, ia);
    EXPECT_TRUE(out.expired.empty());
    for (const Request& r : out.requests) served.push_back(seq_of(r));
    b.batch_complete(out.model);
  }
  EXPECT_EQ(served, (std::vector<std::uint64_t>{301, 302, 303, 304}));
  EXPECT_EQ(b.pending(bg), 0u);
  EXPECT_EQ(b.pending(ba), 0u);
  EXPECT_EQ(b.pending(ia), 0u);
  b.close();
}

TEST(BatcherShed, ShedCapacityRequiresAShedList) {
  MicroBatcher b({.shed_capacity = 2});
  const auto m = b.add_model({});
  EXPECT_THROW((void)b.submit(m, make_request(1, 1)), Error);
  b.close();
}

// ---------------------------------------------------------------------------
// Engine-level: expiry, shed counters, and "never reaches a worker".

struct TestModel {
  std::shared_ptr<infer::SparseDnn> dnn;
  index_t width = 0;
};

TestModel make_model(index_t neurons, std::size_t layers,
                     std::uint64_t seed) {
  Rng rng(seed);
  const auto net = gc::network(neurons, layers, &rng);
  TestModel m;
  m.dnn = std::make_shared<infer::SparseDnn>(net.layers, net.bias, gc::kClamp);
  m.width = neurons;
  return m;
}

// Per-class completion ledger: each submitted request must land in
// exactly one bucket.
struct Ledger {
  std::atomic<std::uint64_t> ok{0};
  std::atomic<std::uint64_t> deadline{0};
  std::atomic<std::uint64_t> other{0};

  DoneFn done() {
    return [this](std::span<const float>, const RequestTiming&,
                  std::exception_ptr err) {
      if (!err) {
        ok.fetch_add(1);
        return;
      }
      try {
        std::rethrow_exception(err);
      } catch (const DeadlineExceededError&) {
        deadline.fetch_add(1);
      } catch (...) {
        other.fetch_add(1);
      }
    };
  }

  std::uint64_t total() const {
    return ok.load() + deadline.load() + other.load();
  }
};

TEST(EngineDeadline, ExpiredRequestNeverReachesAWorker) {
  const auto m = make_model(1024, 2, 1);
  const std::vector<float> x(static_cast<std::size_t>(m.width), 1.0f);

  FakeClock clock;
  FaultInjector fault({.added_latency = 1ms});
  Engine engine({.workers = 1,
                 .max_batch_rows = 1,
                 .max_delay = 0us,
                 .clock = &clock,
                 .fault = &fault});
  const auto id =
      engine.add_model(m.dnn, "gc", {.priority = Priority::kInteractive});

  Ledger plug, doomed;
  // The plug occupies the lone worker: claimed immediately, then parked
  // in the injector's 1ms virtual latency wait.
  ASSERT_TRUE(engine
                  .submit(InferenceRequest::borrowed(id, x, 1),
                          {.done = plug.done()})
                  .admitted());
  ASSERT_TRUE(eventually(
      [&] { return engine.pending(id) == 0 && clock.parked() >= 1; }));

  // Queued behind the busy worker with a 500us end-to-end deadline.
  SubmitOptions opts;
  opts.deadline = 500us;
  opts.done = doomed.done();
  ASSERT_TRUE(engine.submit(InferenceRequest::borrowed(id, x, 1), opts)
                  .admitted());

  // Virtual time jumps past both the injected latency and the deadline:
  // the plug finishes, the doomed request is claimed already expired.
  clock.advance(1ms);
  ASSERT_TRUE(eventually([&] { return plug.total() + doomed.total() == 2; }));
  engine.shutdown();

  EXPECT_EQ(plug.ok.load(), 1u);
  EXPECT_EQ(doomed.deadline.load(), 1u);
  EXPECT_EQ(doomed.ok.load(), 0u);

  const auto s = engine.stats(id);
  EXPECT_EQ(s.requests, 2u);
  EXPECT_EQ(s.errors, 1u);
  EXPECT_EQ(s.expired, 1u);
  EXPECT_EQ(s.shed, 0u);
  // THE proof it never became forward work: exactly one batch (the
  // plug) ever ran, and it carried one row.
  EXPECT_EQ(s.batches, 1u);
  EXPECT_EQ(s.rows, 1u);
  const auto cls = engine.class_stats(Priority::kInteractive);
  EXPECT_EQ(cls.expired, 1u);
  EXPECT_EQ(cls.batches, 1u);
}

TEST(EngineShed, PressureShedDropsBackgroundBeforeInteractive) {
  const auto m0 = make_model(1024, 2, 2);
  const auto m1 = make_model(1024, 2, 3);
  const std::vector<float> x(static_cast<std::size_t>(m0.width), 1.0f);

  FakeClock clock;
  FaultInjector fault({.added_latency = 1ms});
  Engine engine({.workers = 1,
                 .max_batch_rows = 1,
                 .max_delay = 0us,
                 .queue_capacity = 64,
                 .clock = &clock,
                 .shed_capacity = 4,
                 .fault = &fault});
  const auto chat = engine.add_model(
      m0.dnn, "chat", {.priority = Priority::kInteractive});
  const auto bulk = engine.add_model(
      m1.dnn, "bulk", {.priority = Priority::kBackground});

  Ledger chat_led, bulk_led;
  // Plug the worker so everything below stays queued deterministically.
  ASSERT_TRUE(engine
                  .submit(InferenceRequest::borrowed(bulk, x, 1),
                          {.done = bulk_led.done()})
                  .admitted());
  ASSERT_TRUE(eventually(
      [&] { return engine.pending(bulk) == 0 && clock.parked() >= 1; }));

  // Fill to shed_capacity with background work...
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(engine
                    .submit(InferenceRequest::borrowed(bulk, x, 1),
                            {.done = bulk_led.done()})
                    .admitted());
  }
  EXPECT_EQ(bulk_led.deadline.load(), 0u);
  // ... then two interactive arrivals displace the two newest
  // background requests.  Shed completions run synchronously on the
  // submitting thread, so the counts are visible immediately.
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(engine
                    .submit(InferenceRequest::borrowed(chat, x, 1),
                            {.done = chat_led.done()})
                    .admitted());
  }
  EXPECT_EQ(bulk_led.deadline.load(), 2u);
  EXPECT_EQ(chat_led.deadline.load(), 0u);
  EXPECT_EQ(engine.class_stats(Priority::kBackground).shed, 2u);
  EXPECT_EQ(engine.class_stats(Priority::kInteractive).shed, 0u);

  // Drain: plug + 2 surviving bulk + 2 chat, each a 1ms injected wait.
  const std::uint64_t expected = 7;
  const auto give_up = std::chrono::steady_clock::now() + 10s;
  while (chat_led.total() + bulk_led.total() < expected &&
         std::chrono::steady_clock::now() < give_up) {
    clock.advance(1ms);
    std::this_thread::sleep_for(500us);
  }
  ASSERT_EQ(chat_led.total() + bulk_led.total(), expected);
  engine.shutdown();

  // Exactly-once accounting per class: nothing lost, nothing doubled.
  EXPECT_EQ(chat_led.ok.load(), 2u);
  EXPECT_EQ(chat_led.deadline.load(), 0u);
  EXPECT_EQ(bulk_led.ok.load(), 3u);
  EXPECT_EQ(bulk_led.deadline.load(), 2u);
  EXPECT_EQ(bulk_led.other.load(), 0u);

  const auto bg = engine.class_stats(Priority::kBackground);
  EXPECT_EQ(bg.requests, 5u);
  EXPECT_EQ(bg.shed, 2u);
  EXPECT_EQ(bg.expired, 0u);
  EXPECT_EQ(bg.errors, 2u);
  const auto ia = engine.class_stats(Priority::kInteractive);
  EXPECT_EQ(ia.requests, 2u);
  EXPECT_EQ(ia.shed, 0u);
  EXPECT_EQ(ia.errors, 0u);
  EXPECT_EQ(fault.delayed_batches(), 5u);
}

// ---------------------------------------------------------------------------
// kBoundedWait admission composes with the end-to-end deadline.

TEST(EngineBoundedWait, AdmissionWaitIsCappedAtRemainingDeadline) {
  const auto m = make_model(1024, 2, 4);
  const std::vector<float> x(static_cast<std::size_t>(m.width), 1.0f);

  FakeClock clock;
  FaultInjector fault({.added_latency = 10ms});
  Engine engine({.workers = 1,
                 .max_batch_rows = 1,
                 .max_delay = 0us,
                 .queue_capacity = 1,
                 .clock = &clock,
                 .fault = &fault});
  const auto id =
      engine.add_model(m.dnn, "gc", {.priority = Priority::kInteractive});

  Ledger plug, filler, doomed;
  // The plug occupies the lone worker (parked in the injector's 10ms
  // wait); the filler occupies the single queue slot.
  ASSERT_TRUE(engine
                  .submit(InferenceRequest::borrowed(id, x, 1),
                          {.done = plug.done()})
                  .admitted());
  ASSERT_TRUE(eventually(
      [&] { return engine.pending(id) == 0 && clock.parked() >= 1; }));
  ASSERT_TRUE(engine
                  .submit(InferenceRequest::borrowed(id, x, 1),
                          {.done = filler.done()})
                  .admitted());

  // Bounded-wait submit with a 10ms admission budget but only 1ms of
  // deadline left.  Waiting past the deadline could only admit a
  // request that is already dead, so the wait must give up at 1ms.
  std::atomic<int> verdict{-1};
  std::thread submitter([&] {
    SubmitOptions opts;
    opts.admission = Admission::kBoundedWait;
    opts.timeout = 10ms;
    opts.deadline = 1ms;
    opts.done = doomed.done();
    verdict.store(
        engine.submit(InferenceRequest::borrowed(id, x, 1), opts).admitted()
            ? 1
            : 0);
  });
  // Both the worker (fault wait) and the submitter (admission wait) are
  // parked in virtual time.
  ASSERT_TRUE(eventually([&] { return clock.parked() >= 2; }));

  // Advance exactly the remaining deadline -- far short of the 10ms
  // admission budget.  The worker's 10ms fault wait is still pending,
  // so no queue space appeared: only the deadline cap can unblock the
  // submitter, and it must report rejection.
  clock.advance(1ms);
  submitter.join();
  EXPECT_EQ(verdict.load(), 0);
  EXPECT_EQ(doomed.total(), 0u);  // never admitted => never completed

  // A pre-expired deadline degrades to try_submit: with the queue still
  // full it rejects immediately instead of parking for `timeout` (a
  // wrongly parked wait would hang this test -- virtual time only
  // advances below).
  {
    SubmitOptions opts;
    opts.admission = Admission::kBoundedWait;
    opts.timeout = 10ms;
    opts.deadline = -1us;
    opts.done = doomed.done();
    EXPECT_FALSE(
        engine.submit(InferenceRequest::borrowed(id, x, 1), opts).admitted());
  }

  // Drain the plug and the filler (10ms injected latency each).
  const auto give_up = std::chrono::steady_clock::now() + 10s;
  while (plug.total() + filler.total() < 2 &&
         std::chrono::steady_clock::now() < give_up) {
    clock.advance(10ms);
    std::this_thread::sleep_for(500us);
  }
  ASSERT_EQ(plug.total() + filler.total(), 2u);

  // With queue space available a pre-expired deadline is still ADMITTED
  // (then shed at claim with DeadlineExceededError) -- the wire-pinned
  // contract for relays carrying a spent budget.
  Ledger relay;
  {
    SubmitOptions opts;
    opts.admission = Admission::kBoundedWait;
    opts.timeout = 10ms;
    opts.deadline = -1us;
    opts.done = relay.done();
    EXPECT_TRUE(
        engine.submit(InferenceRequest::borrowed(id, x, 1), opts).admitted());
  }
  ASSERT_TRUE(eventually([&] { return relay.total() == 1; }));
  engine.shutdown();

  EXPECT_EQ(plug.ok.load(), 1u);
  EXPECT_EQ(filler.ok.load(), 1u);
  EXPECT_EQ(relay.deadline.load(), 1u);
  EXPECT_EQ(doomed.total(), 0u);
}

}  // namespace
}  // namespace radix::serve

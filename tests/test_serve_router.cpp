// ShardRouter tests: routing one model across N independent engines
// must change WHERE work runs, never what it computes -- outputs stay
// bit-identical to a direct fused forward of the same rows -- while the
// Backend surface (merged stats, summed pending, drain-on-shutdown,
// name lookup) behaves like one big engine.  Sized to stay meaningful
// under ThreadSanitizer (the suite carries the `serve` CTest label).
#include "serve/router.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <vector>

#include "radixnet/graph_challenge.hpp"
#include "serve/client.hpp"
#include "support/random.hpp"
#include "support/thread.hpp"

namespace radix::serve {
namespace {

using namespace std::chrono_literals;

std::shared_ptr<infer::SparseDnn> make_dnn(index_t neurons,
                                           std::size_t layers,
                                           std::uint64_t seed) {
  Rng rng(seed);
  const auto net = gc::network(neurons, layers, &rng);
  return std::make_shared<infer::SparseDnn>(net.layers, net.bias, gc::kClamp);
}

std::vector<float> direct_forward(const infer::SparseDnn& dnn,
                                  const std::vector<float>& input,
                                  index_t rows) {
  infer::InferenceWorkspace ws;
  const auto y = dnn.forward(input.data(), rows, ws);
  return {y.begin(), y.end()};
}

TEST(ShardRouter, BitExactAcrossShardsAndAggregatedStats) {
  const auto dnn = make_dnn(1024, 4, 60);
  ShardRouter router({.shards = 3,
                      .engine = {.workers = 1,
                                 .max_batch_rows = 8,
                                 .max_delay = 200us,
                                 .queue_capacity = 64}});
  EXPECT_EQ(router.num_shards(), 3u);
  const auto id = router.add_model(dnn, "gc");

  constexpr index_t kRequests = 60;
  Rng irng(61);
  std::vector<std::vector<float>> inputs;
  std::vector<std::vector<float>> want;
  std::uint64_t total_rows = 0;
  for (index_t i = 0; i < kRequests; ++i) {
    const index_t rows = 1 + i % 3;
    total_rows += rows;
    inputs.push_back(gc::synthetic_input(rows, 1024, 0.4, irng));
    want.push_back(direct_forward(*dnn, inputs.back(), rows));
  }

  std::vector<std::future<std::vector<float>>> futures;
  for (index_t i = 0; i < kRequests; ++i) {
    futures.push_back(
        router.submit(InferenceRequest::borrowed(id, inputs[i], 1 + i % 3))
            .take_future());
  }
  for (index_t i = 0; i < kRequests; ++i) {
    EXPECT_EQ(futures[i].get(), want[i])
        << "request " << i << " must be bit-exact regardless of its shard";
  }

  // The merged view must account for every request exactly once, and
  // its batch histogram must cover every batch any shard ran.
  const ServeStats merged = router.stats(id);
  EXPECT_EQ(merged.requests, kRequests);
  EXPECT_EQ(merged.rows, total_rows);
  EXPECT_EQ(merged.errors, 0u);
  EXPECT_GT(merged.edges_per_busy_second, 0.0);
  std::uint64_t shard_requests = 0, shard_batches = 0;
  for (std::size_t s = 0; s < router.num_shards(); ++s) {
    shard_requests += router.shard(s).stats(id).requests;
    shard_batches += router.shard(s).stats(id).batches;
  }
  EXPECT_EQ(shard_requests, kRequests);
  EXPECT_EQ(merged.batches, shard_batches);
  std::uint64_t hist_total = 0;
  for (const auto& [bound, count] : merged.batch_rows_histogram) {
    hist_total += count;
  }
  EXPECT_EQ(hist_total, merged.batches);
  EXPECT_EQ(router.pending(id), 0u);
}

TEST(ShardRouter, SingleShardDegeneratesToOneEngine) {
  const auto dnn = make_dnn(1024, 2, 62);
  ShardRouter router({.shards = 1, .engine = {.workers = 1}});
  const auto id = router.add_model(dnn, "solo");
  Rng irng(63);
  const auto x = gc::synthetic_input(2, 1024, 0.4, irng);
  EXPECT_EQ(router.submit(InferenceRequest::borrowed(id, x, 2)).get(),
            direct_forward(*dnn, x, 2));
  EXPECT_EQ(router.stats(id).requests, 1u);
  EXPECT_EQ(router.shard(0).stats(id).requests, 1u);
}

TEST(ShardRouter, FindModelNamesAndDuplicateRejection) {
  const auto d0 = make_dnn(1024, 2, 64);
  const auto d1 = make_dnn(1024, 2, 65);
  ShardRouter router({.shards = 2, .engine = {.workers = 1}});
  const auto a = router.add_model(d0, "alpha");
  const auto anon = router.add_model(d1);  // generated name

  EXPECT_EQ(router.num_models(), 2u);
  EXPECT_EQ(router.find_model("alpha").value(), a);
  EXPECT_EQ(router.find_model("model-1").value(), anon);
  EXPECT_FALSE(router.find_model("beta").has_value());
  // Router and shard registries agree on names.
  for (std::size_t s = 0; s < router.num_shards(); ++s) {
    EXPECT_EQ(router.shard(s).find_model("alpha").value(), a);
    EXPECT_EQ(router.shard(s).model_name(anon), "model-1");
  }
  EXPECT_THROW((void)router.add_model(d1, "alpha"), Error);
  EXPECT_EQ(router.num_models(), 2u);
}

TEST(ShardRouter, ClientWorksOverRouterBackend) {
  const auto dnn = make_dnn(1024, 2, 66);
  ShardRouter router({.shards = 2, .engine = {.workers = 1}});
  (void)router.add_model(dnn, "svc");
  Client client(router, router.find_model("svc").value());
  Rng irng(67);
  const auto x = gc::synthetic_input(1, 1024, 0.4, irng);
  const auto want = direct_forward(*dnn, x, 1);
  for (int i = 0; i < 6; ++i) EXPECT_EQ(client.submit(x, 1).get(), want);
  EXPECT_EQ(client.stats().requests, 6u);
}

TEST(ShardRouter, ConcurrentClientsSpreadAndStayBitExact) {
  const auto dnn = make_dnn(1024, 4, 68);
  ShardRouter router({.shards = 2,
                      .engine = {.workers = 1,
                                 .max_batch_rows = 16,
                                 .max_delay = 200us,
                                 .queue_capacity = 64}});
  const auto id = router.add_model(dnn, "hot");

  constexpr index_t kPayloads = 4;
  struct Payload {
    std::vector<float> x;
    index_t rows;
    std::vector<float> want;
  };
  std::vector<Payload> payloads;
  Rng irng(69);
  for (index_t p = 0; p < kPayloads; ++p) {
    Payload pl;
    pl.rows = 1 + p % 2;
    pl.x = gc::synthetic_input(pl.rows, 1024, 0.4, irng);
    pl.want = direct_forward(*dnn, pl.x, pl.rows);
    payloads.push_back(std::move(pl));
  }

  constexpr int kClients = 6;
  constexpr int kRequestsPerClient = 25;
  std::atomic<int> mismatches{0};
  {
    ThreadGroup clients;
    for (int c = 0; c < kClients; ++c) {
      clients.spawn([&, c] {
        for (int i = 0; i < kRequestsPerClient; ++i) {
          const Payload& pl =
              payloads[static_cast<std::size_t>((c + i) % kPayloads)];
          auto res =
              router.submit(InferenceRequest::borrowed(id, pl.x, pl.rows));
          if (!res.admitted() || res.get() != pl.want) ++mismatches;
        }
      });
    }
  }  // join
  EXPECT_EQ(mismatches.load(), 0);
  const ServeStats merged = router.stats(id);
  EXPECT_EQ(merged.requests,
            static_cast<std::uint64_t>(kClients * kRequestsPerClient));
  EXPECT_EQ(merged.errors, 0u);
  // Two-choice routing under saturating load must actually use more
  // than one shard (a stuck router would funnel everything to one).
  int shards_used = 0;
  for (std::size_t s = 0; s < router.num_shards(); ++s) {
    if (router.shard(s).stats(id).requests > 0) ++shards_used;
  }
  EXPECT_GT(shards_used, 1) << "power-of-two-choices never spread the load";
}

TEST(ShardRouter, ShutdownDrainsEveryShardAndRejectsAfter) {
  const auto dnn = make_dnn(1024, 2, 70);
  std::vector<std::future<std::vector<float>>> futures;
  std::vector<float> x;
  std::vector<float> want;
  {
    ShardRouter router({.shards = 3,
                        .engine = {.workers = 1, .max_delay = 10ms}});
    const auto id = router.add_model(dnn, "drain");
    Rng irng(71);
    x = gc::synthetic_input(1, 1024, 0.4, irng);
    want = direct_forward(*dnn, x, 1);
    for (int i = 0; i < 30; ++i) {
      futures.push_back(
          router.submit(InferenceRequest::borrowed(id, x, 1)).take_future());
    }
    router.shutdown();  // every shard drains before this returns
    EXPECT_FALSE(router.accepting());
    EXPECT_FALSE(router.submit(InferenceRequest::borrowed(id, x, 1)).admitted());
    EXPECT_EQ(router.stats(id).requests, 30u);
  }  // destructor: second shutdown must be a no-op
  for (auto& f : futures) {
    EXPECT_EQ(f.get(), want);  // no broken promises across shards
  }
}

TEST(ShardRouter, FailFastAdmissionIsPerChosenShard) {
  const auto dnn = make_dnn(1024, 2, 72);
  // One shard, one worker, tiny queue: deterministic full-queue probe
  // through the router's admission path.
  ShardRouter router({.shards = 1,
                      .engine = {.workers = 1,
                                 .max_delay = 0us,
                                 .queue_capacity = 1}});
  const auto id = router.add_model(dnn, "tight");
  Rng irng(73);
  const auto x = gc::synthetic_input(1, 1024, 0.4, irng);

  std::promise<void> parked;
  std::promise<void> release;
  auto release_future = release.get_future();
  (void)router.submit(InferenceRequest::borrowed(id, x, 1),
                      {.done = [&](std::span<const float>,
                                   const RequestTiming&, std::exception_ptr) {
                        parked.set_value();
                        release_future.wait();
                      }});
  parked.get_future().wait();
  auto f1 = router.submit(InferenceRequest::borrowed(id, x, 1)).take_future();
  EXPECT_EQ(router.pending(id), 1u);
  EXPECT_FALSE(router
                   .submit(InferenceRequest::borrowed(id, x, 1),
                           {.admission = Admission::kFailFast})
                   .admitted())
      << "full shard queue must reject fail-fast admission";
  release.set_value();
  EXPECT_EQ(f1.get(), direct_forward(*dnn, x, 1));
}

}  // namespace
}  // namespace radix::serve

// Persistent model-registry journal.
//
// A RegistryJournal records the lifecycle of a serving daemon's model
// set -- add / swap / remove / tombstone events, each naming a model,
// the artifact file (relative to the store directory) backing it, and
// its admission priority -- so a daemon started with `--store-dir` can
// replay the journal and come back up warm with its exact pre-crash
// model set.
//
// On-disk format (store_dir/journal): a line-oriented text file,
//
//     radix-journal v1
//     add\t<model>\t<artifact-file>\t<priority>
//     swap\t<model>\t<artifact-file>\t<priority>
//     remove\t<model>
//     tombstone\t<model>
//
// Commits are crash-safe: every mutation rewrites the full journal to
// `journal.tmp`, fsyncs it, renames it over `journal`, and fsyncs the
// directory, so a reader never observes a torn journal -- it sees
// either the previous committed state or the new one.  The journal is
// intentionally an event log rather than a snapshot: replay() returns
// the events in order and the caller folds them (last event per model
// wins; remove/tombstone clear the entry), which keeps this layer free
// of any dependency on the serving engine.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace radix::store {

enum class JournalOp : std::uint8_t {
  kAdd,
  kSwap,
  kRemove,
  kTombstone,
};

struct JournalEvent {
  JournalOp op;
  std::string model;
  std::string artifact;  // file name relative to the store dir ("" for
                         // remove/tombstone)
  std::uint8_t priority = 0;
};

class RegistryJournal {
 public:
  /// Opens (and replays) the journal in `store_dir`, creating an empty
  /// one if none exists.  Throws IoError on unreadable or malformed
  /// journals.
  explicit RegistryJournal(const std::string& store_dir);

  /// All committed events, oldest first.
  const std::vector<JournalEvent>& events() const noexcept { return events_; }

  /// The folded live set: last add/swap per model still standing (no
  /// later remove/tombstone), in first-added order.
  std::vector<JournalEvent> live() const;

  /// Append an event and durably commit (rewrite + fsync + rename).
  void append(const JournalEvent& ev);

  const std::string& path() const noexcept { return path_; }

 private:
  void commit() const;

  std::string dir_;
  std::string path_;
  std::vector<JournalEvent> events_;
};

}  // namespace radix::store

// Request-level tracing for the serving stack.
//
// The stats surface (serve/stats.hpp) answers aggregate questions --
// throughput, p99s, shed counts -- but not "what happened to THIS
// request": which shard admitted it, how long it sat queued, whether it
// failed over mid-flight, and where its latency went.  This header adds
// that layer:
//
//   * RequestId -- a process-wide monotonically increasing id assigned
//     at submit (next_request_id()).  The router stamps it through its
//     failover capsule, so every hop of a resubmitted request records
//     under the same id and a cross-shard timeline reconstructs exactly.
//   * TraceEvent -- one fixed-size record: id, lifecycle kind, shard,
//     model, priority, rows, and a timestamp taken ONCE per event from
//     the injected ClockSource (FakeClock in tests makes timelines
//     deterministic).
//   * TraceRing -- a bounded, allocation-free ring of event slots.
//     record() is lock-free and wait-free: one relaxed fetch_add claims
//     a position, the slot's fields are written as relaxed atomic
//     stores bracketed by a per-slot sequence marker (odd = write in
//     progress, even = published).  Writers never wait for readers or
//     for each other; when the ring wraps, the oldest events are
//     overwritten and counted as dropped.  drain() validates the marker
//     before AND after reading a slot, so a concurrently overwritten
//     slot is skipped, never torn.
//   * Tracer -- a handful of TraceRings with threads spread across them
//     by thread-id hash (keeps concurrent workers off each other's
//     cache lines), plus the clock that stamps every event.  One Tracer
//     is shared by a router and all its shard engines; events carry the
//     shard index (EngineOptions::shard_index) so the merged drain
//     attributes every hop.
//   * build_timelines() -- groups drained events by RequestId and sorts
//     each group by (timestamp, lifecycle order), reconstructing one
//     per-request timeline even when its events span shards and rings.
//
// Cost model: tracing off is one null-pointer test per would-be event;
// tracing on is one clock read, one relaxed fetch_add and five relaxed
// atomic stores -- no locks, no allocation, bounded memory.  The
// overhead is measured by bench_serving's traced closed-loop twin and
// gated (>= 0.95x untraced) by scripts/check_perf_smoke.py.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "serve/qos.hpp"
#include "support/thread.hpp"

namespace radix::serve {

/// Process-wide request identity; 0 means "none assigned".
using RequestId = std::uint64_t;

/// Monotonically increasing, process-wide, starts at 1.  One relaxed
/// fetch_add -- cheap enough to assign unconditionally at submit.
RequestId next_request_id() noexcept;

/// Lifecycle stages of a traced request.  Enum values are in lifecycle
/// order so that events sharing a (FakeClock) timestamp sort into the
/// order they logically occurred; kCompleted is last among the states a
/// request can reach at one instant on one shard.
enum class TraceEventKind : std::uint8_t {
  kSubmitted = 0,     ///< entered Backend::submit
  kAdmitted = 1,      ///< accepted into a queue
  kClaimed = 2,       ///< picked up by a worker
  kBatched = 3,       ///< coalesced; rows = total batch rows
  kForwardBegin = 4,  ///< fused forward started
  kForwardEnd = 5,    ///< fused forward returned
  kShed = 6,          ///< dropped by the queue-pressure policy
  kExpired = 7,       ///< end-to-end deadline passed before claim
  kFailover = 8,      ///< resubmitted on another shard after an abort
  kCompleted = 9,     ///< completion delivered to the caller
};

inline constexpr const char* to_string(TraceEventKind k) noexcept {
  switch (k) {
    case TraceEventKind::kSubmitted: return "submitted";
    case TraceEventKind::kAdmitted: return "admitted";
    case TraceEventKind::kClaimed: return "claimed";
    case TraceEventKind::kBatched: return "batched";
    case TraceEventKind::kForwardBegin: return "forward-begin";
    case TraceEventKind::kForwardEnd: return "forward-end";
    case TraceEventKind::kShed: return "shed";
    case TraceEventKind::kExpired: return "expired";
    case TraceEventKind::kFailover: return "failover";
    case TraceEventKind::kCompleted: return "completed";
  }
  return "?";
}

/// One fixed-size trace record.
struct TraceEvent {
  RequestId id = 0;
  std::int64_t t_ns = 0;  ///< clock timestamp, ns since the clock epoch
  TraceEventKind kind = TraceEventKind::kSubmitted;
  Priority priority = Priority::kBatch;
  std::uint16_t shard = 0;
  std::uint32_t model = 0;
  std::uint32_t rows = 0;
};

/// One line: "id=5 t=123456ns shard=1 model=0 interactive claimed 4r".
std::string to_string(const TraceEvent& e);

/// Bounded lock-free ring of trace events (see the file comment for the
/// slot protocol).  Capacity is rounded up to a power of two.
class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity);

  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  /// Lock-free, wait-free append; overwrites the oldest slot when full.
  void record(const TraceEvent& e) noexcept;

  /// Events still resident, oldest first, skipping slots that a racing
  /// writer holds or has overwritten.  Safe concurrently with record();
  /// does not consume (the ring keeps overwriting in place).
  void snapshot(std::vector<TraceEvent>& out) const;

  /// Events recorded since construction (including overwritten ones).
  std::uint64_t recorded() const noexcept {
    return head_.load(std::memory_order_acquire);
  }

  /// Events lost to wraparound so far (recorded - capacity, floored).
  std::uint64_t dropped() const noexcept;

  std::size_t capacity() const noexcept { return slots_.size(); }

 private:
  // Every field is a relaxed atomic: a wrap collision (two writers
  // >= capacity positions apart landing on one slot) interleaves
  // stores, which the marker re-check detects and discards -- no torn
  // non-atomic reads, so the protocol is clean under TSan.
  struct Slot {
    std::atomic<std::uint64_t> marker{0};  // 2*pos+1 writing, 2*pos+2 done
    std::atomic<RequestId> id{0};
    std::atomic<std::int64_t> t_ns{0};
    std::atomic<std::uint64_t> meta{0};  // kind|priority|shard|rows packed
    std::atomic<std::uint64_t> model{0};
  };

  std::vector<Slot> slots_;
  std::size_t mask_;
  std::atomic<std::uint64_t> head_{0};
};

struct TracerOptions {
  /// Event capacity per ring (rounded up to a power of two).
  std::size_t ring_capacity = 4096;
  /// Independent rings; threads spread across them by thread-id hash so
  /// concurrent recorders rarely share a head counter.
  std::size_t rings = 4;
  /// Timestamp source; nullptr = the process steady clock.  Must match
  /// the clock of the engines recording into this tracer, or timelines
  /// mix epochs.
  ClockSource* clock = nullptr;
};

/// The recording surface handed to engines and routers (EngineOptions::
/// tracer / shared through ShardRouterOptions::engine).  All methods are
/// thread-safe; record paths are lock-free.
class Tracer {
 public:
  explicit Tracer(TracerOptions options = {});

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Stamp the clock once and record.
  void record(RequestId id, TraceEventKind kind, std::uint16_t shard,
              std::uint32_t model, Priority priority,
              std::uint32_t rows) noexcept;

  /// Record with a caller-provided timestamp: batch-scoped call sites
  /// (claim, forward begin/end) stamp the clock once per batch and
  /// reuse it for every member request.
  void record_at(std::int64_t t_ns, RequestId id, TraceEventKind kind,
                 std::uint16_t shard, std::uint32_t model, Priority priority,
                 std::uint32_t rows) noexcept;

  /// Nanosecond timestamp of `now` by this tracer's clock.
  std::int64_t now_ns() const noexcept;

  /// Merge-snapshot every ring: all resident events, globally sorted by
  /// (t_ns, id, kind).  Safe while recording continues.
  std::vector<TraceEvent> drain() const;

  std::uint64_t recorded() const noexcept;
  std::uint64_t dropped() const noexcept;

  ClockSource& clock() const noexcept { return *clock_; }

 private:
  TraceRing& ring_for_thread() noexcept;

  ClockSource* clock_;
  std::vector<std::unique_ptr<TraceRing>> rings_;
};

/// All events of one request, sorted by (t_ns, lifecycle order).
struct RequestTimeline {
  RequestId id = 0;
  std::vector<TraceEvent> events;

  /// True when any event carries `kind`.
  bool has(TraceEventKind kind) const noexcept;
  /// Distinct shard indices touched, ascending.
  std::vector<std::uint16_t> shards() const;
};

/// Group drained events by RequestId (id 0 -- untraced -- is dropped)
/// and sort each group into lifecycle order; timelines come back sorted
/// by ascending id, i.e. submit order.
std::vector<RequestTimeline> build_timelines(std::vector<TraceEvent> events);

/// Multi-line rendering of one timeline (debugging, bench dumps).
std::string to_string(const RequestTimeline& t);

}  // namespace radix::serve

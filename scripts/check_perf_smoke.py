#!/usr/bin/env python3
"""Release-mode perf smoke gate for the fused inference path.

Runs bench_inference_scaling (Google Benchmark, short --benchmark_min_time)
and fails if a kernel regression made the fused path slower than the
in-harness reference path.  No absolute thresholds -- CI hardware varies --
only two invariants that must hold on any host:

  * every configuration reports edges/sec (items_per_second) > 0;
  * the geometric-mean edges/sec ratio fused/reference >= 0.9 (the gate
    sits below 1.0 so shared-runner noise on short samples cannot flake
    the job; the fused path measures 2-4x on a quiet host, so a geomean
    under 0.9 is a genuine regression, not noise).

When bench_overload is present, its overload-robustness shape is gated
too: interactive traffic is never shed at any offered load, and at 2x
the calibrated saturating rate the background shed rate is nonzero
while the interactive p99 stays within the SLO bound -- the PR-7
policy invariants, which the injected service floor makes host-
independent.  The PR-9 sweeps ride the same gate: the grey-failure arm
(BM_ServeOverloadGrey, one unreliable shard) additionally requires the
router's merged error count to equal the per-shard sum exactly, and
the diurnal arm (BM_ServeOverloadDiurnal) holds the same never-shed-
interactive policy under a sinusoidal offered rate.

When bench_store is present, the model-store load path is gated: the
RADIXART mmap load must be >= 10x faster than the legacy TSV parse of
the same model at every benchmarked depth (the mmap path validates
checksums but never deserializes, so losing that margin means the
zero-copy path started copying).

When bench_serving is present (it is skipped only when Google Benchmark
is unavailable), its output *shape* is sanity-checked too: the direct,
closed-loop, latency, QoS and sharded-router benchmarks must all be
present, report edges/sec > 0, the closed-loop runs must expose the
batching counters (mean_batch_rows, e2e_p95_us), and the sharded runs
(shards 1/2/4) must expose a sane busiest_shard_share in (0, 1].  The
networked front-end IS gated: at 32 closed-loop clients the remote
sweep over the loopback wire protocol must hold >= 0.5x of the
in-process run of identical shape (batching amortizes the socket cost;
falling under half in-process throughput means the front-end, not the
host, is the bottleneck).  No other serving throughput or
shard-scaling ratio is gated here -- shared CI runners are 1-2 cores
and the saturation behavior is machine-specific; the ratios are
tracked by scripts/record_bench_baseline.py snapshots instead.

Usage: python3 scripts/check_perf_smoke.py [--build-dir build]
"""

import argparse
import json
import math
import os
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
MIN_GEOMEAN_RATIO = 0.9
# Tracing must be on-cheap: closed-loop throughput with a Tracer
# attached must stay within 5% of the untraced run (geomean across
# thread counts; the slack absorbs shared-runner noise).
MIN_TRACED_RATIO = 0.95
# The networked front-end must not halve serving throughput once the
# socket cost amortizes: at 32 closed-loop clients the remote sweep
# (BM_ServeRemoteClosedLoop, loopback wire protocol) must hold >= 0.5x
# of the in-process run of identical shape.  Only the 32-client point
# is gated -- at 1 client the round-trip is pure wire latency and the
# ratio is expected to be small.
MIN_REMOTE_RATIO = 0.5
REMOTE_GATED_THREADS = 32
# The RADIXART mmap load path must beat the legacy TSV parse by a wide
# margin at equal depth -- it validates checksums but never
# deserializes, so 10x is conservative (a quiet host measures >100x).
# Falling under 10x means the zero-copy path started copying.
MIN_STORE_MMAP_RATIO = 10.0


def fused_reference_ratios(rates):
    """Pair BM_InferFused/<config> with BM_InferReference/<config> and
    return {config: fused/reference}; a fused entry whose reference
    counterpart is missing or zero maps to None.  Shared with
    record_bench_baseline.py so the pairing cannot drift.
    """
    ratios = {}
    for name, fused in rates.items():
        if not name.startswith("BM_InferFused/"):
            continue
        config = name.split("/", 1)[1]
        ref = rates.get(f"BM_InferReference/{config}")
        ratios[config] = fused / ref if ref else None
    return ratios


def traced_untraced_ratios(rates):
    """Pair BM_ServeClosedLoopTraced/<shape> with BM_ServeClosedLoop/
    <shape> (same args and thread count) and return {shape:
    traced/untraced}; a traced entry whose untraced counterpart is
    missing or zero maps to None.  Shared with record_bench_baseline.py
    so the pairing cannot drift."""
    ratios = {}
    for name, traced in rates.items():
        if not name.startswith("BM_ServeClosedLoopTraced/"):
            continue
        suffix = name.split("/", 1)[1]
        base = rates.get(f"BM_ServeClosedLoop/{suffix}")
        ratios[suffix] = traced / base if base else None
    return ratios


def remote_inprocess_ratios(rates):
    """Pair BM_ServeRemoteClosedLoop/<shape> with BM_ServeClosedLoop/
    <shape> (same args and thread count) and return {shape:
    remote/in-process}; a remote entry whose in-process counterpart is
    missing or zero maps to None.  Shared with record_bench_baseline.py
    so the pairing cannot drift."""
    ratios = {}
    for name, remote in rates.items():
        if not name.startswith("BM_ServeRemoteClosedLoop/"):
            continue
        suffix = name.split("/", 1)[1]
        base = rates.get(f"BM_ServeClosedLoop/{suffix}")
        ratios[suffix] = remote / base if base else None
    return ratios


def store_mmap_over_tsv(times):
    """Pair BM_StoreLoadMmap/<depth> with BM_StoreLoadTsv/<depth> (same
    model on disk in each format) and return {depth: tsv_time /
    mmap_time} -- the mmap path's load speedup; a mmap entry whose TSV
    counterpart is missing or zero-time maps to None.  Shared with
    record_bench_baseline.py so the pairing cannot drift."""
    ratios = {}
    for name, mmap_time in times.items():
        if not name.startswith("BM_StoreLoadMmap/"):
            continue
        depth = name.split("/", 1)[1]
        tsv_time = times.get(f"BM_StoreLoadTsv/{depth}")
        ratios[depth] = (tsv_time / mmap_time
                         if tsv_time and mmap_time else None)
    return ratios


def check_store_shape(build_dir: str, min_time: str) -> int:
    """Run bench_store briefly and gate the model-store load path: the
    mmap artifact load must be >= 10x faster than the legacy TSV parse
    at every depth, and the spec-only and cold-start arms must be
    present.  A missing binary (benchmarks disabled) is a skip."""
    exe = os.path.join(build_dir, "bench", "bench_store")
    if not os.path.isfile(exe):
        print("note: bench_store not built; skipping store load check")
        return 0
    out = subprocess.run(
        [exe, "--benchmark_format=json",
         f"--benchmark_min_time={min_time}"],
        capture_output=True, text=True, check=True)
    data = json.loads(out.stdout)

    times = {b["name"]: b.get("real_time", 0.0)
             for b in data["benchmarks"]}
    for family in ("BM_StoreLoadMmap", "BM_StoreLoadTsv",
                   "BM_StoreLoadSpec", "BM_StoreColdStart"):
        if not any(n.startswith(family + "/") for n in times):
            print(f"FAIL: bench_store produced no {family} runs")
            return 1
    ratios = store_mmap_over_tsv(times)
    for depth, ratio in sorted(ratios.items()):
        if ratio is None:
            print(f"FAIL: no TSV counterpart for BM_StoreLoadMmap/{depth}")
            return 1
        print(f"  depth {depth:>4}: mmap load speedup over TSV = "
              f"{ratio:.0f}x (gate: >= {MIN_STORE_MMAP_RATIO:.0f}x)")
        if ratio < MIN_STORE_MMAP_RATIO:
            print("FAIL: the mmap artifact load lost its margin over the "
                  "TSV parse -- the zero-copy path is copying")
            return 1
    print("store load OK (mmap >= 10x TSV at every depth)")
    return 0


def check_serving_shape(build_dir: str, min_time: str) -> int:
    """Run bench_serving briefly and validate its output shape (see
    module docstring).  Returns 0 on pass, 1 on failure; a missing
    binary (benchmarks disabled) is a skip, not a failure."""
    exe = os.path.join(build_dir, "bench", "bench_serving")
    if not os.path.isfile(exe):
        print("note: bench_serving not built; skipping serving shape check")
        return 0
    out = subprocess.run(
        [exe, "--benchmark_format=json",
         f"--benchmark_min_time={min_time}"],
        capture_output=True, text=True, check=True)
    data = json.loads(out.stdout)

    seen = {"BM_ServeDirect": 0, "BM_ServeClosedLoop": 0,
            "BM_ServeClosedLoopTraced": 0, "BM_ServeRemoteClosedLoop": 0,
            "BM_ServeLatencyVsDelay": 0, "BM_ServeInteractiveSolo": 0,
            "BM_ServeBatchOnly": 0, "BM_ServeMixedQoS": 0,
            "BM_ServeSharded": 0, "BM_ServeFailover": 0}
    rates = {}
    for b in data["benchmarks"]:
        family = b["name"].split("/", 1)[0]
        if family not in seen:
            continue
        seen[family] += 1
        rates[b["name"]] = b.get("items_per_second", 0.0)
        if b.get("items_per_second", 0.0) <= 0.0 and family != \
                "BM_ServeLatencyVsDelay":
            print(f"FAIL: {b['name']} reports no edges/sec")
            return 1
        if family in ("BM_ServeClosedLoop", "BM_ServeClosedLoopTraced",
                      "BM_ServeRemoteClosedLoop"):
            for counter in ("mean_batch_rows", "e2e_p95_us"):
                if b.get(counter, 0.0) <= 0.0:
                    print(f"FAIL: {b['name']} missing counter {counter}")
                    return 1
        if family == "BM_ServeClosedLoopTraced" and \
                b.get("trace_events", 0.0) <= 0.0:
            print(f"FAIL: {b['name']} recorded no trace events")
            return 1
        if family in ("BM_ServeInteractiveSolo", "BM_ServeMixedQoS") and \
                b.get("interactive_p99_us", 0.0) <= 0.0:
            print(f"FAIL: {b['name']} missing counter interactive_p99_us")
            return 1
        if family == "BM_ServeSharded":
            share = b.get("busiest_shard_share", 0.0)
            if not 0.0 < share <= 1.0:
                print(f"FAIL: {b['name']} busiest_shard_share {share} "
                      "not in (0, 1]")
                return 1
        if family == "BM_ServeFailover":
            # The chaos thread must have actually churned shards AND the
            # kills must have moved queued work (failovers is allowed to
            # be zero only if a short sample produced zero kills).
            kills = b.get("kills", 0.0)
            if kills <= 0.0:
                print(f"FAIL: {b['name']} reports no shard kills")
                return 1
            if "failovers" not in b:
                print(f"FAIL: {b['name']} missing counter failovers")
                return 1
    missing = [f for f, n in seen.items() if n == 0]
    if missing:
        print(f"FAIL: bench_serving produced no runs for {missing}")
        return 1

    # Tracing-overhead gate: every traced closed-loop run pairs with the
    # untraced run of identical shape (same args and thread count).
    traced = traced_untraced_ratios(rates)
    for suffix, ratio in traced.items():
        if ratio is None:
            print(f"FAIL: no untraced counterpart for "
                  f"BM_ServeClosedLoopTraced/{suffix}")
            return 1
    if not traced:
        print("FAIL: no traced/untraced closed-loop pairs found")
        return 1
    geomean = math.exp(sum(math.log(r) for r in traced.values())
                       / len(traced))
    for suffix, ratio in sorted(traced.items()):
        print(f"  {suffix:>32}: traced/untraced = {ratio:.2f}x")
    print(f"geomean traced/untraced = {geomean:.2f}x "
          f"(gate: >= {MIN_TRACED_RATIO})")
    if geomean < MIN_TRACED_RATIO:
        print("FAIL: tracing costs more than 5% of closed-loop throughput")
        return 1

    # Networked front-end gate: every remote closed-loop run pairs with
    # the in-process run of identical shape; only the saturating
    # 32-client point is held to the 0.5x bar (see MIN_REMOTE_RATIO).
    remote = remote_inprocess_ratios(rates)
    if not remote:
        print("FAIL: no remote/in-process closed-loop pairs found")
        return 1
    gated = []
    for suffix, ratio in sorted(remote.items()):
        if ratio is None:
            print(f"FAIL: no in-process counterpart for "
                  f"BM_ServeRemoteClosedLoop/{suffix}")
            return 1
        tail = f"threads:{REMOTE_GATED_THREADS}"
        marker = " (gated)" if suffix.endswith(tail) else ""
        print(f"  {suffix:>40}: remote/in-process = {ratio:.2f}x{marker}")
        if suffix.endswith(tail):
            gated.append((suffix, ratio))
    if not gated:
        print(f"FAIL: no BM_ServeRemoteClosedLoop run at "
              f"threads:{REMOTE_GATED_THREADS} to gate")
        return 1
    for suffix, ratio in gated:
        if ratio < MIN_REMOTE_RATIO:
            print(f"FAIL: remote front-end holds only {ratio:.2f}x of "
                  f"in-process throughput at {suffix} "
                  f"(gate: >= {MIN_REMOTE_RATIO})")
            return 1

    print(f"serving shape OK ({sum(seen.values())} benchmark runs)")
    return 0


def check_overload_shape(build_dir: str) -> int:
    """Run bench_overload briefly and validate the overload robustness
    shape (PR 7): both sweeps present at loads 50/100/200, interactive
    NEVER shed at any load, and at 200% of the calibrated saturating
    rate the background shed rate is nonzero while the interactive p99
    stays within the reported SLO bound.  These are policy invariants,
    not throughput numbers -- the injected service floor makes them hold
    on any host.  A missing binary (benchmarks disabled) is a skip."""
    exe = os.path.join(build_dir, "bench", "bench_overload")
    if not os.path.isfile(exe):
        print("note: bench_overload not built; skipping overload shape check")
        return 0
    out = subprocess.run(
        [exe, "--benchmark_format=json", "--benchmark_min_time=0.05"],
        capture_output=True, text=True, check=True)
    data = json.loads(out.stdout)

    seen = {"BM_ServeOverload": set(), "BM_ServeOverloadFaulty": set(),
            "BM_ServeOverloadGrey": set(), "BM_ServeOverloadDiurnal": set()}
    for b in data["benchmarks"]:
        parts = b["name"].split("/")
        family = parts[0]
        if family not in seen:
            continue
        load_pct = int(parts[1])
        seen[family].add(load_pct)
        if family == "BM_ServeOverloadGrey":
            # Grey-failure exactness: the router's merged error count
            # must equal the per-shard sum -- no double-counting through
            # the merge or the failover path (pinned by test_serve_grey;
            # cross-checked here under real overload traffic).
            merged = b.get("merged_errors", -1.0)
            shard_sum = b.get("shard_error_sum", -2.0)
            if merged != shard_sum:
                print(f"FAIL: {b['name']} merged_errors {merged} != "
                      f"shard_error_sum {shard_sum} -- error merge must "
                      "be exact")
                return 1
            if "grey_failures" not in b:
                print(f"FAIL: {b['name']} missing counter grey_failures")
                return 1
        if b.get("interactive_shed", -1.0) != 0.0:
            print(f"FAIL: {b['name']} shed interactive requests "
                  f"({b.get('interactive_shed')}) -- pressure must shed "
                  "background first")
            return 1
        p99 = b.get("interactive_p99_us", 0.0)
        slo = b.get("slo_us", 0.0)
        if not 0.0 < p99 <= slo:
            print(f"FAIL: {b['name']} interactive p99 {p99}us outside "
                  f"(0, slo={slo}us] -- overload must not be paid in "
                  "interactive latency")
            return 1
        attainment = b.get("interactive_attainment", 0.0)
        if not 0.0 < attainment <= 1.0:
            print(f"FAIL: {b['name']} interactive_attainment {attainment} "
                  "not in (0, 1]")
            return 1
        if load_pct == 200 and b.get("bg_shed_rate", 0.0) <= 0.0:
            print(f"FAIL: {b['name']} reports no background shedding at "
                  "2x saturating load -- bounded queues must shed")
            return 1
    for family, loads in seen.items():
        missing = {50, 100, 200} - loads
        if missing:
            print(f"FAIL: bench_overload produced no {family} runs for "
                  f"loads {sorted(missing)}")
            return 1
    print("overload shape OK (interactive never shed; background sheds "
          "at 2x load)")
    return 0


def check_metrics_shape(build_dir: str) -> int:
    """Run the serving example with --metrics --trace and validate the
    export surface: the Prometheus exposition block renders every
    documented family with per-class and per-shard labels, the JSON dump
    follows it, and the trace block reconstructs at least one
    per-request timeline.  A missing binary is a skip (examples are
    always built alongside benchmarks in CI, but a bench-only build
    should not fail here)."""
    exe = os.path.join(build_dir, "examples", "example_serve_graph_challenge")
    if not os.path.isfile(exe):
        print("note: serving example not built; skipping metrics shape check")
        return 0
    out = subprocess.run([exe, "--metrics", "--trace"],
                         capture_output=True, text=True)
    if out.returncode != 0:
        print(f"FAIL: {exe} --metrics --trace exited {out.returncode}")
        return 1
    text = out.stdout
    begin = text.find("=== metrics (prometheus) ===")
    end = text.find("=== metrics (json) ===")
    if begin < 0 or end < begin:
        print("FAIL: --metrics output lacks the exposition delimiters")
        return 1
    exposition = text[begin:end]
    required = [
        'radix_serve_requests_total{class="interactive",shard="0"}',
        'radix_serve_requests_total{class="interactive",shard="1"}',
        'radix_serve_shed_total{',
        'radix_serve_expired_total{',
        'radix_serve_errors_total{',
        'radix_serve_rows_total{',
        'radix_serve_batches_total{',
        'radix_serve_busy_seconds_total{',
        'radix_serve_queue_depth{',
        'radix_serve_worker_busy_fraction{shard="0"}',
        'radix_serve_workers{shard="1"}',
        'radix_serve_shard_health{shard="0"}',
        'radix_serve_failovers_total',
        'radix_serve_e2e_latency_seconds_bucket{',
        'radix_serve_e2e_latency_seconds_sum{',
        'radix_serve_queue_wait_seconds_bucket{',
        'radix_serve_batch_rows_bucket{',
        'le="+Inf"',
    ]
    for series in required:
        if series not in exposition:
            print(f"FAIL: exposition is missing {series}")
            return 1
    if '"families"' not in text[end:]:
        print("FAIL: --metrics output lacks the JSON dump")
        return 1
    begin = text.find("=== trace (")
    if begin < 0 or " completed " not in text[begin:] or \
            "request " not in text[begin:]:
        print("FAIL: --trace output lacks a reconstructed timeline with "
              "a completed event")
        return 1
    print("metrics shape OK (exposition + JSON + timelines)")
    return 0


def main() -> int:
    ap = argparse.ArgumentParser()
    ap.add_argument("--build-dir", default=os.path.join(REPO_ROOT, "build"))
    ap.add_argument("--min-time", default="0.05")
    args = ap.parse_args()

    exe = os.path.join(args.build_dir, "bench", "bench_inference_scaling")
    if not os.path.isfile(exe):
        print(f"error: {exe} not found; build Release with benchmarks first",
              file=sys.stderr)
        return 2
    out = subprocess.run(
        [exe, "--benchmark_format=json",
         f"--benchmark_min_time={args.min_time}"],
        capture_output=True, text=True, check=True)
    data = json.loads(out.stdout)

    rates = {}
    for b in data["benchmarks"]:
        rate = b.get("items_per_second", 0.0)
        if rate <= 0.0:
            print(f"FAIL: {b['name']} reports edges/sec {rate} (must be > 0)")
            return 1
        rates[b["name"]] = rate

    ratios = fused_reference_ratios(rates)
    for config, ratio in ratios.items():
        if ratio is None:
            print(f"FAIL: no reference benchmark for config {config}")
            return 1
    if not ratios:
        print("FAIL: no fused/reference benchmark pairs found")
        return 1

    geomean = math.exp(sum(math.log(r) for r in ratios.values())
                       / len(ratios))
    for config, ratio in sorted(ratios.items()):
        print(f"  {config:>16}: fused/reference = {ratio:.2f}x")
    print(f"geomean fused/reference = {geomean:.2f}x "
          f"(gate: >= {MIN_GEOMEAN_RATIO})")
    if geomean < MIN_GEOMEAN_RATIO:
        print("FAIL: fused inference path is slower than the reference path")
        return 1

    if check_serving_shape(args.build_dir, args.min_time) != 0:
        return 1
    if check_overload_shape(args.build_dir) != 0:
        return 1
    if check_store_shape(args.build_dir, args.min_time) != 0:
        return 1
    if check_metrics_shape(args.build_dir) != 0:
        return 1
    print("perf smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())

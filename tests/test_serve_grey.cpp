// Grey-failure tests: a shard that is up but UNRELIABLE (fault-injected
// batch failures on one shard of a fleet) must keep the error
// accounting exact.  The claims pinned here:
//
//   * an injected failure is delivered to its caller as
//     FaultInjectedError -- the failover layer must NOT blind-retry it
//     (the batch RAN; only AbortedError proves non-execution);
//   * every error is counted exactly once: the router's merged
//     per-model view, the sum of the per-shard views, the per-class
//     view and the caller-observed failure count all agree -- no
//     double-counting through the merge or the failover path;
//   * shed + expired <= errors survives grey failure (injected failures
//     are errors but neither shed nor expired).
#include "serve/fault.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "radixnet/graph_challenge.hpp"
#include "serve/router.hpp"
#include "support/random.hpp"

namespace radix::serve {
namespace {

using namespace std::chrono_literals;

std::shared_ptr<infer::SparseDnn> make_dnn(index_t neurons,
                                           std::size_t layers,
                                           std::uint64_t seed) {
  Rng rng(seed);
  const auto net = gc::network(neurons, layers, &rng);
  return std::make_shared<infer::SparseDnn>(net.layers, net.bias, gc::kClamp);
}

TEST(GreyFailure, InjectedFailuresAreDeliveredOnceAndCountedExactly) {
  const auto dnn = make_dnn(1024, 2, 110);

  // Shard 1 fails ~30% of its batches; shards 0 and 2 run clean.
  // max_batch_rows = 1 and max_delay = 0 make batch == request, so the
  // injector's failure count equals the failed-request count.
  FaultInjector fault({.fail_probability = 0.3, .seed = 111});
  ShardRouterOptions options;
  options.shards = 3;
  options.engine = {.workers = 1, .max_batch_rows = 1, .max_delay = 0us};
  options.tune_shard = [&](std::size_t shard, EngineOptions& engine) {
    if (shard == 1) engine.fault = &fault;
  };
  ShardRouter router(options);
  const auto id = router.add_model(dnn, "grey");

  constexpr int kRequests = 200;
  Rng irng(112);
  std::vector<std::vector<float>> inputs;
  std::vector<std::future<std::vector<float>>> futures;
  for (int i = 0; i < kRequests; ++i) {
    inputs.push_back(gc::synthetic_input(1, 1024, 0.4, irng));
    futures.push_back(
        router.submit(InferenceRequest::borrowed(id, inputs.back(), 1))
            .take_future());
  }

  int delivered_failures = 0;
  int delivered_successes = 0;
  for (auto& f : futures) {
    try {
      const auto out = f.get();
      EXPECT_EQ(out.size(), 1024u);
      ++delivered_successes;
    } catch (const FaultInjectedError&) {
      ++delivered_failures;
    }
    // Any other exception type escapes and fails the test: grey
    // failures must surface as themselves, never as aborts/deadline.
  }
  EXPECT_EQ(delivered_successes + delivered_failures, kRequests)
      << "exactly one completion per request";
  EXPECT_GT(delivered_failures, 0) << "the grey shard must see traffic";
  EXPECT_EQ(static_cast<std::uint64_t>(delivered_failures),
            fault.injected_failures())
      << "a failed batch must be delivered, not blind-retried";

  // Error accounting is exact across every view of the same traffic.
  std::uint64_t shard_errors = 0;
  std::uint64_t shard_requests = 0;
  ServeStats merged;
  for (std::size_t i = 0; i < router.num_shards(); ++i) {
    const ServeStats s = router.shard(i).stats(id);
    shard_errors += s.errors;
    shard_requests += s.requests;
    merged.merge(s);
  }
  const ServeStats view = router.stats(id);
  EXPECT_EQ(shard_requests, kRequests);
  EXPECT_EQ(view.requests, kRequests);
  EXPECT_EQ(view.errors, shard_errors);
  EXPECT_EQ(view.errors, static_cast<std::uint64_t>(delivered_failures));
  EXPECT_EQ(view.errors, merged.errors);
  EXPECT_EQ(view.e2e_hist.raw_counts(), merged.e2e_hist.raw_counts())
      << "the merged latency distribution must be the bucket-wise sum";

  // Per-class view agrees with the per-model view (one model here).
  const ServeStats cls = router.class_stats(Priority::kBatch);
  EXPECT_EQ(cls.requests, view.requests);
  EXPECT_EQ(cls.errors, view.errors);

  // Injected failures are errors, not shed/expired traffic.
  EXPECT_EQ(view.shed, 0u);
  EXPECT_EQ(view.expired, 0u);
  EXPECT_LE(view.shed + view.expired, view.errors + 0u);
  EXPECT_EQ(router.failovers(), 0u)
      << "grey failures must not trigger the failover path";

  router.shutdown();
}

TEST(GreyFailure, FailoverAndGreyErrorsDoNotDoubleCount) {
  const auto dnn = make_dnn(1024, 2, 113);

  // Shard 0 fails EVERY batch it claims.  Submit traffic, then kill the
  // grey shard mid-stream: queued requests abort and fail over to the
  // healthy shard, already-claimed grey failures are delivered.  The
  // per-shard ledgers intentionally record an abort as an error even
  // when the router re-serves the request elsewhere (each shard counts
  // what IT did with its admissions), so the exactness invariants are:
  // every request completes exactly once; the router's merged error
  // count equals the shard sum exactly; caller-visible failures are
  // the injected ones alone; and the abort-side errors are exactly the
  // successful failovers -- nothing counted twice, nothing lost.
  FaultInjector fault({.fail_probability = 1.0, .seed = 114});
  ShardRouterOptions options;
  options.shards = 2;
  options.engine = {.workers = 1, .max_batch_rows = 1, .max_delay = 0us};
  options.tune_shard = [&](std::size_t shard, EngineOptions& engine) {
    if (shard == 0) engine.fault = &fault;
  };
  ShardRouter router(options);
  const auto id = router.add_model(dnn, "grey");

  constexpr int kRequests = 120;
  Rng irng(115);
  std::vector<std::vector<float>> inputs;
  std::vector<std::future<std::vector<float>>> futures;
  for (int i = 0; i < kRequests; ++i) {
    inputs.push_back(gc::synthetic_input(1, 1024, 0.4, irng));
    futures.push_back(
        router.submit(InferenceRequest::borrowed(id, inputs.back(), 1))
            .take_future());
    if (i == kRequests / 2) router.kill_shard(0);
  }

  int failures = 0;
  int successes = 0;
  for (auto& f : futures) {
    try {
      (void)f.get();
      ++successes;
    } catch (const FaultInjectedError&) {
      ++failures;
    }
    // AbortedError escaping here means a kill-orphaned request was
    // delivered instead of failed over -- a failover bug.
  }
  EXPECT_EQ(successes + failures, kRequests);

  std::uint64_t shard_errors = 0;
  std::uint64_t shard_requests = 0;
  for (std::size_t i = 0; i < router.num_shards(); ++i) {
    const ServeStats s = router.shard(i).stats(id);
    shard_errors += s.errors;
    shard_requests += s.requests;
  }
  const ServeStats view = router.stats(id);
  EXPECT_EQ(view.errors, shard_errors) << "merge must not double-count";
  // Callers only see the grey failures; aborts were retried away.
  EXPECT_EQ(static_cast<std::uint64_t>(failures),
            fault.injected_failures());
  // Shard-side errors decompose exactly: injected failures (delivered)
  // plus aborts (each re-served once, counted by failovers()).  Any
  // double count -- an abort recorded on both hops, a failover retried
  // twice -- breaks one of these equalities.
  EXPECT_EQ(view.errors, fault.injected_failures() + router.failovers());
  EXPECT_EQ(shard_requests,
            static_cast<std::uint64_t>(kRequests) + router.failovers());

  router.shutdown();
}

}  // namespace
}  // namespace radix::serve

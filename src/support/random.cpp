#include "support/random.hpp"

#include <cmath>
#include <numbers>

namespace radix {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
  // All-zero state is the one forbidden state of xoshiro; splitmix64 of any
  // seed cannot produce four zeros, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t bound) noexcept {
  // Lemire's nearly-divisionless method with rejection for exact
  // uniformity.
  if (bound == 0) return 0;
  // __int128 is a GCC/Clang extension; __extension__ keeps -Wpedantic quiet.
  __extension__ using u128 = unsigned __int128;
  u128 m = static_cast<u128>(next_u64()) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      m = static_cast<u128>(next_u64()) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::uniform01() noexcept {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform01();
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform01();
  while (u1 <= 0.0) u1 = uniform01();
  const double u2 = uniform01();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) noexcept { return uniform01() < p; }

std::vector<std::uint32_t> Rng::permutation(std::uint32_t n) {
  std::vector<std::uint32_t> p(n);
  for (std::uint32_t i = 0; i < n; ++i) p[i] = i;
  shuffle(p);
  return p;
}

Rng Rng::split() noexcept { return Rng(next_u64()); }

}  // namespace radix

#include "nn/activations.hpp"

#include <cmath>

#include "support/error.hpp"
#include "support/parallel.hpp"

namespace radix::nn {

void activate(Activation act, const Tensor& x, Tensor& y) {
  RADIX_REQUIRE_DIM(x.rows() == y.rows() && x.cols() == y.cols(),
                    "activate: shape mismatch");
  const float* in = x.data();
  float* out = y.data();
  const std::int64_t n = static_cast<std::int64_t>(x.size());
  switch (act) {
    case Activation::kIdentity:
      parallel_for(0, n, [&](std::int64_t i) { out[i] = in[i]; });
      break;
    case Activation::kRelu:
      parallel_for(0, n, [&](std::int64_t i) {
        out[i] = in[i] > 0.0f ? in[i] : 0.0f;
      });
      break;
    case Activation::kSigmoid:
      parallel_for(0, n, [&](std::int64_t i) {
        out[i] = 1.0f / (1.0f + std::exp(-in[i]));
      });
      break;
    case Activation::kTanh:
      parallel_for(0, n, [&](std::int64_t i) { out[i] = std::tanh(in[i]); });
      break;
  }
}

void activate_backward(Activation act, const Tensor& x, const Tensor& y,
                       const Tensor& dy, Tensor& dx) {
  RADIX_REQUIRE_DIM(x.size() == dy.size() && x.size() == dx.size() &&
                        x.size() == y.size(),
                    "activate_backward: shape mismatch");
  const float* in = x.data();
  const float* out = y.data();
  const float* g = dy.data();
  float* o = dx.data();
  const std::int64_t n = static_cast<std::int64_t>(x.size());
  switch (act) {
    case Activation::kIdentity:
      parallel_for(0, n, [&](std::int64_t i) { o[i] = g[i]; });
      break;
    case Activation::kRelu:
      parallel_for(0, n, [&](std::int64_t i) {
        o[i] = in[i] > 0.0f ? g[i] : 0.0f;
      });
      break;
    case Activation::kSigmoid:
      parallel_for(0, n, [&](std::int64_t i) {
        o[i] = g[i] * out[i] * (1.0f - out[i]);
      });
      break;
    case Activation::kTanh:
      parallel_for(0, n, [&](std::int64_t i) {
        o[i] = g[i] * (1.0f - out[i] * out[i]);
      });
      break;
  }
}

float activate_scalar(Activation act, float v) {
  switch (act) {
    case Activation::kIdentity:
      return v;
    case Activation::kRelu:
      return v > 0.0f ? v : 0.0f;
    case Activation::kSigmoid:
      return 1.0f / (1.0f + std::exp(-v));
    case Activation::kTanh:
      return std::tanh(v);
  }
  throw InternalError("activate_scalar: unknown activation");
}

void softmax_rows(const Tensor& x, Tensor& y) {
  RADIX_REQUIRE_DIM(x.rows() == y.rows() && x.cols() == y.cols(),
                    "softmax_rows: shape mismatch");
  parallel_for(
      0, x.rows(),
      [&](std::int64_t r) {
        const float* in = x.row(static_cast<index_t>(r));
        float* out = y.row(static_cast<index_t>(r));
        float mx = in[0];
        for (index_t c = 1; c < x.cols(); ++c) mx = std::max(mx, in[c]);
        float sum = 0.0f;
        for (index_t c = 0; c < x.cols(); ++c) {
          out[c] = std::exp(in[c] - mx);
          sum += out[c];
        }
        const float inv = 1.0f / sum;
        for (index_t c = 0; c < x.cols(); ++c) out[c] *= inv;
      },
      /*grain=*/16);
}

const char* to_string(Activation act) {
  switch (act) {
    case Activation::kIdentity:
      return "identity";
    case Activation::kRelu:
      return "relu";
    case Activation::kSigmoid:
      return "sigmoid";
    case Activation::kTanh:
      return "tanh";
  }
  return "?";
}

}  // namespace radix::nn

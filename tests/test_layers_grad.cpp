// Finite-difference gradient checks for every layer and loss -- the
// correctness backbone of the training substrate.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "nn/layers.hpp"
#include "nn/loss.hpp"
#include "radixnet/builder.hpp"
#include "support/random.hpp"

namespace radix::nn {
namespace {

Tensor random_tensor(index_t r, index_t c, Rng& rng) {
  Tensor t(r, c);
  for (std::size_t i = 0; i < t.size(); ++i) {
    t.data()[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  return t;
}

// Scalar objective: sum of layer outputs weighted by a fixed random
// tensor (so dLoss/dY is that tensor).
struct Probe {
  Tensor coeff;
  float loss(const Tensor& y) const {
    float acc = 0.0f;
    for (std::size_t i = 0; i < y.size(); ++i) {
      acc += y.data()[i] * coeff.data()[i];
    }
    return acc;
  }
};

// Central finite difference of the probe loss wrt one scalar location.
float numeric_grad(const std::function<float()>& eval, float* location,
                   float eps = 1e-3f) {
  const float saved = *location;
  *location = saved + eps;
  const float up = eval();
  *location = saved - eps;
  const float down = eval();
  *location = saved;
  return (up - down) / (2.0f * eps);
}

void check_layer_gradients(Layer& layer, index_t batch, Rng& rng,
                           float tol = 5e-2f) {
  Tensor x = random_tensor(batch, layer.in_features(), rng);
  Probe probe{random_tensor(batch, layer.out_features(), rng)};

  auto eval = [&]() { return probe.loss(layer.forward(x)); };

  // Analytic gradients.
  layer.zero_grad();
  (void)layer.forward(x);
  Tensor dx = layer.backward(probe.coeff);

  // Input gradient at a handful of positions.
  for (std::size_t trial = 0; trial < 8; ++trial) {
    const std::size_t pos = rng.uniform(x.size());
    const float num = numeric_grad(eval, x.data() + pos);
    EXPECT_NEAR(dx.data()[pos], num, tol * std::max(1.0f, std::fabs(num)))
        << layer.name() << " dX at " << pos;
  }

  // Parameter gradients (recompute analytic grads after the probing
  // above restored x).
  layer.zero_grad();
  (void)layer.forward(x);
  (void)layer.backward(probe.coeff);
  for (Param p : layer.params()) {
    for (std::size_t trial = 0; trial < 8; ++trial) {
      const std::size_t pos = rng.uniform(p.size);
      const float num = numeric_grad(eval, p.value + pos);
      EXPECT_NEAR(p.grad[pos], num, tol * std::max(1.0f, std::fabs(num)))
          << layer.name() << " dParam at " << pos;
    }
  }
}

TEST(GradCheck, DenseLinear) {
  Rng rng(1);
  DenseLinear layer(7, 5, rng);
  check_layer_gradients(layer, 4, rng);
}

TEST(GradCheck, DenseLinearNoBias) {
  Rng rng(2);
  DenseLinear layer(3, 6, rng, /*use_bias=*/false);
  EXPECT_EQ(layer.params().size(), 1u);
  check_layer_gradients(layer, 5, rng);
}

TEST(GradCheck, SparseLinearRandomPattern) {
  Rng rng(3);
  Coo<pattern_t> coo(8, 6);
  for (index_t r = 0; r < 8; ++r) {
    for (index_t c = 0; c < 6; ++c) {
      if (rng.bernoulli(0.4)) coo.push(r, c, 1);
    }
  }
  // Guarantee no empty row/col so the layer is a valid FNNT layer.
  for (index_t i = 0; i < 6; ++i) coo.push(i, i % 6, 1);
  for (index_t r = 6; r < 8; ++r) coo.push(r, 0, 1);
  SparseLinear layer(Csr<pattern_t>::from_coo(coo).pattern(), rng);
  check_layer_gradients(layer, 4, rng);
}

TEST(GradCheck, SparseLinearRadixPattern) {
  Rng rng(4);
  const auto topo = build_radix_net({{2, 2, 2}},
                                    std::vector<std::uint32_t>{1, 1, 1, 1});
  SparseLinear layer(topo.layer(0), rng);
  EXPECT_EQ(layer.num_weights(), 16u);  // 8 nodes x degree 2
  check_layer_gradients(layer, 3, rng);
}

TEST(GradCheck, SparseGradientStaysOnPattern) {
  // The gradient buffer has exactly nnz entries -- structural sparsity is
  // preserved by construction; check the forward ignores off-pattern
  // inputs appropriately by comparing against an equivalent dense layer.
  Rng rng(5);
  Coo<pattern_t> coo(4, 4);
  coo.push(0, 1, 1);
  coo.push(1, 0, 1);
  coo.push(2, 3, 1);
  coo.push(3, 2, 1);
  SparseLinear sparse(Csr<pattern_t>::from_coo(coo), rng);
  EXPECT_EQ(sparse.num_weights(), 4u);
  Tensor x = random_tensor(2, 4, rng);
  Tensor y = sparse.forward(x);
  // Each output c receives only from its single source.
  const auto& w = sparse.weights();
  for (index_t b = 0; b < 2; ++b) {
    EXPECT_NEAR(y.at(b, 1),
                x.at(b, 0) * w.at(0, 1) + sparse.bias()[1], 1e-5f);
    EXPECT_NEAR(y.at(b, 2),
                x.at(b, 3) * w.at(3, 2) + sparse.bias()[2], 1e-5f);
  }
}

TEST(GradCheck, ActivationLayers) {
  Rng rng(6);
  for (Activation act : {Activation::kIdentity, Activation::kRelu,
                         Activation::kSigmoid, Activation::kTanh}) {
    ActivationLayer layer(act, 9);
    check_layer_gradients(layer, 4, rng);
  }
}

TEST(GradCheck, MseLoss) {
  Rng rng(7);
  Tensor pred = random_tensor(3, 4, rng);
  const Tensor target = random_tensor(3, 4, rng);
  Tensor dpred(3, 4);
  (void)mse_loss(pred, target, dpred);
  for (std::size_t pos = 0; pos < pred.size(); pos += 3) {
    auto eval = [&]() {
      Tensor scratch(3, 4);
      return mse_loss(pred, target, scratch);
    };
    const float num = numeric_grad(eval, pred.data() + pos);
    EXPECT_NEAR(dpred.data()[pos], num, 1e-2f);
  }
}

TEST(GradCheck, SoftmaxCrossEntropy) {
  Rng rng(8);
  Tensor logits = random_tensor(5, 7, rng);
  std::vector<std::int32_t> labels(5);
  for (auto& l : labels) l = static_cast<std::int32_t>(rng.uniform(7));
  Tensor dlogits(5, 7);
  (void)softmax_cross_entropy(logits, labels, dlogits);
  for (std::size_t pos = 0; pos < logits.size(); pos += 4) {
    auto eval = [&]() {
      Tensor scratch(5, 7);
      return softmax_cross_entropy(logits, labels, scratch);
    };
    const float num = numeric_grad(eval, logits.data() + pos);
    EXPECT_NEAR(dlogits.data()[pos], num, 2e-2f);
  }
}

TEST(SoftmaxCrossEntropy, GradientRowsSumToZero) {
  Rng rng(9);
  Tensor logits = random_tensor(4, 5, rng);
  std::vector<std::int32_t> labels = {0, 2, 4, 1};
  Tensor dlogits(4, 5);
  (void)softmax_cross_entropy(logits, labels, dlogits);
  for (index_t r = 0; r < 4; ++r) {
    float sum = 0.0f;
    for (index_t c = 0; c < 5; ++c) sum += dlogits.at(r, c);
    EXPECT_NEAR(sum, 0.0f, 1e-5f);
  }
}

TEST(SoftmaxCrossEntropy, RejectsBadLabels) {
  Tensor logits(2, 3);
  Tensor dlogits(2, 3);
  std::vector<std::int32_t> bad = {0, 5};
  EXPECT_THROW(softmax_cross_entropy(logits, bad, dlogits), SpecError);
}

TEST(ZeroGrad, ClearsAccumulation) {
  Rng rng(10);
  DenseLinear layer(3, 3, rng);
  Tensor x = random_tensor(2, 3, rng);
  (void)layer.forward(x);
  (void)layer.backward(random_tensor(2, 3, rng));
  bool any_nonzero = false;
  for (Param p : layer.params()) {
    for (std::size_t i = 0; i < p.size; ++i) {
      any_nonzero = any_nonzero || p.grad[i] != 0.0f;
    }
  }
  EXPECT_TRUE(any_nonzero);
  layer.zero_grad();
  for (Param p : layer.params()) {
    for (std::size_t i = 0; i < p.size; ++i) {
      EXPECT_FLOAT_EQ(p.grad[i], 0.0f);
    }
  }
}

}  // namespace
}  // namespace radix::nn

#include "radixnet/graph_challenge.hpp"

#include "radixnet/builder.hpp"
#include "sparse/permutation.hpp"
#include "sparse/spgemm.hpp"
#include "support/error.hpp"

namespace radix::gc {

bool is_supported_width(index_t neurons) {
  return neurons == 1024 || neurons == 4096 || neurons == 16384 ||
         neurons == 65536;
}

std::vector<std::vector<std::uint32_t>> base_system(index_t neurons) {
  switch (neurons) {
    case 1024:
      return {{32, 32}};
    case 4096:
      return {{32, 32, 4}};
    case 16384:
      return {{32, 32, 16}};
    case 65536:
      return {{32, 32, 64}};
    default:
      throw SpecError("graph_challenge: unsupported width " +
                      std::to_string(neurons));
  }
}

float bias_for_width(index_t neurons) {
  switch (neurons) {
    case 1024:
      return -0.30f;
    case 4096:
      return -0.35f;
    case 16384:
      return -0.40f;
    case 65536:
      return -0.45f;
    default:
      throw SpecError("graph_challenge: unsupported width " +
                      std::to_string(neurons));
  }
}

RadixNetSpec spec(index_t neurons, std::size_t num_layers) {
  RADIX_REQUIRE(is_supported_width(neurons),
                "graph_challenge: unsupported width " +
                    std::to_string(neurons));
  const auto base = base_system(neurons);
  const std::size_t period = base.front().size();
  RADIX_REQUIRE(num_layers > 0 && num_layers % period == 0,
                "graph_challenge: num_layers must be a positive multiple of " +
                    std::to_string(period) + " for width " +
                    std::to_string(neurons));
  std::vector<MixedRadix> systems;
  systems.reserve(num_layers / period);
  for (std::size_t i = 0; i < num_layers / period; ++i) {
    systems.emplace_back(base.front());
  }
  return RadixNetSpec::extended(std::move(systems));
}

Fnnt topology(index_t neurons, std::size_t num_layers) {
  return build_radix_net(spec(neurons, num_layers));
}

Network network(index_t neurons, std::size_t num_layers, Rng* rng) {
  const Fnnt topo = topology(neurons, num_layers);
  const auto base = base_system(neurons).front();
  Network net;
  net.neurons = neurons;
  net.bias = bias_for_width(neurons);
  net.layers.reserve(topo.depth());
  for (std::size_t i = 0; i < topo.depth(); ++i) {
    const float w = weight_for_indegree(base[i % base.size()]);
    Csr<pattern_t> layer = topo.layer(i);
    if (rng != nullptr) {
      // Shuffle destination neuron ids: W <- W * Pi.  Row structure (one
      // source's fan-out) is preserved; the axis alignment of the radix
      // pattern is destroyed, as in the published challenge networks.
      std::vector<index_t> perm(layer.cols());
      const auto p32 = rng->permutation(layer.cols());
      for (std::size_t k = 0; k < perm.size(); ++k) perm[k] = p32[k];
      layer = spgemm_bool(layer, permutation_matrix(perm));
    }
    net.layers.push_back(layer.map<float>([w](pattern_t) { return w; }));
  }
  return net;
}

std::vector<float> synthetic_input(index_t batch, index_t neurons,
                                   double nonzero_fraction, Rng& rng) {
  RADIX_REQUIRE(nonzero_fraction >= 0.0 && nonzero_fraction <= 1.0,
                "graph_challenge: nonzero_fraction must be in [0, 1]");
  std::vector<float> x(static_cast<std::size_t>(batch) * neurons, 0.0f);
  for (auto& v : x) {
    if (rng.bernoulli(nonzero_fraction)) v = 1.0f;
  }
  return x;
}

}  // namespace radix::gc

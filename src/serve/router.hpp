// ShardRouter: one model sharded across N independent serving engines,
// behind the same Backend interface as a single Engine.
//
// One Engine scales until its monitor, queues and worker pool saturate
// one socket's worth of contention; the Graph-Challenge regime wants
// the whole host (and, eventually, several hosts) saturated.  The
// ShardRouter takes the cheap route there: it owns N fully independent
// Engine instances -- each with its own worker pool, request queues and
// monitor, so shards share *nothing* on the hot path -- and routes each
// incoming request to one of them:
//
//   * add_model registers the model (same shared SparseDnn, same QoS
//     policy, same name) on every shard; ids are identical across
//     shards and across the router.
//   * submit picks the shard by power-of-two-choices on queue depth:
//     two random shards are probed and the request goes to the one with
//     fewer pending requests for its model.  That is one RNG draw and
//     two briefly locked depth reads per request (Engine::pending_probe,
//     batcher monitor only) -- no global balancing state -- yet keeps
//     the maximum queue imbalance exponentially better than random
//     placement (Mitzenmacher's classic result).
//   * A request is served whole on one shard (rows are never split),
//     and batch rows are independent under the challenge forward rule,
//     so outputs are bit-identical to a direct fused forward of the
//     same rows no matter which shard serves them or how they coalesce.
//   * stats() merges the per-shard snapshots with ServeStats::merge
//     (bucket-wise Log2Histogram::merge), so the aggregate percentiles
//     equal those of a histogram fed every shard's samples; pending()
//     sums shards; shutdown() drains every shard (admitted requests all
//     complete).
//
// The cost of independence: coalescing quality.  Traffic that one
// engine would merge into a single 32-row batch lands on N shards as N
// smaller batches, so lightly loaded routers batch worse than a single
// engine -- the router pays off when offered load saturates more
// workers than one engine's lock can feed (see bench_serving's
// BM_ServeSharded sweep).
#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "infer/sparse_dnn.hpp"
#include "serve/backend.hpp"
#include "serve/engine.hpp"
#include "serve/qos.hpp"

namespace radix::serve {

struct ShardRouterOptions {
  /// Independent engines behind the router (>= 1).
  std::size_t shards = 2;
  /// Applied to every shard.  Note workers == 0 gives EVERY shard one
  /// worker per hardware thread -- set an explicit per-shard count
  /// (e.g. cores / shards) unless oversubscription is intended.
  EngineOptions engine{};
  /// Seed of the power-of-two-choices shard picks (deterministic
  /// per-thread sequences; any value is fine).
  std::uint64_t seed = 0x2545f4914f6cdd1dull;
};

class ShardRouter final : public Backend {
 public:
  explicit ShardRouter(ShardRouterOptions options = {});
  ~ShardRouter() override;  // shutdown() if still running

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  /// Register a model on every shard; returns the router-wide id (equal
  /// on every shard).  `name` must be unique within the router (empty
  /// generates "model-<id>").  Safe to call while traffic is served.
  /// Validation failures (duplicate name, bad QoS, after shutdown)
  /// throw before anything is committed; an allocation-class failure
  /// mid-registration (or a shutdown() racing this call) can leave the
  /// shards partially registered, after which further add_model calls
  /// fail -- discard the router in that case.  Already-registered
  /// models keep serving either way.
  ModelId add_model(std::shared_ptr<const infer::SparseDnn> model,
                    std::string name = "", QosPolicy qos = {});

  std::size_t num_shards() const noexcept;

  /// Read access to one shard (e.g. per-shard stats in benches).
  /// Deliberately const-only: mutating a shard directly (add_model,
  /// shutdown) would desync it from the router's registry and its
  /// siblings.
  const Engine& shard(std::size_t index) const;

  // -- Backend interface --------------------------------------------------

  /// Route to a shard by power-of-two-choices on pending depth, then
  /// submit there under `opts` unchanged.  Admission is decided by the
  /// chosen shard: kBlock waits out backpressure on that shard even if
  /// another happens to have space (the depth-aware pick makes that
  /// rare).
  SubmitResult submit(InferenceRequest req, SubmitOptions opts = {}) override;

  /// Aggregate view across shards (histograms merged bucket-wise).
  ServeStats stats(ModelId model) const override;

  /// Sum of the shards' pending requests for `model`.
  std::size_t pending(ModelId model) const override;

  std::size_t num_models() const override;

  std::optional<ModelId> find_model(std::string_view name) const override;

  /// Drain and join every shard.  Idempotent; called by the destructor.
  void shutdown() override;

  bool accepting() const override;

 private:
  std::size_t pick_shard(ModelId model);

  ShardRouterOptions options_;
  std::vector<std::unique_ptr<Engine>> engines_;

  mutable std::mutex names_mutex_;
  std::vector<std::string> names_;  // index == ModelId
};

}  // namespace radix::serve

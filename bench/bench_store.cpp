// Model-store load-path benchmarks (store/artifact.hpp).
//
// Three ways to get the same Graph-Challenge model from disk into a
// ready SparseDnn, measured end to end:
//
//   BM_StoreLoadMmap -- RADIXART full-CSR artifact: mmap + validate +
//       zero-copy views (no deserialize pass; the only per-load heap
//       work is the section table and the view vector).
//   BM_StoreLoadTsv  -- the legacy path: parse the TSV layer stack,
//       apply weights, build owned CSR layers.
//   BM_StoreLoadSpec -- spec-only artifact: a few hundred bytes on
//       disk, topology regenerated through radixnet::builder.
//
// BM_StoreColdStart adds the first inference on top of the mmap load:
// the daemon-restart metric (cold start to first response).
//
// scripts/record_bench_baseline.py snapshots these into the store_load
// section (schema v9); scripts/check_perf_smoke.py gates mmap load at
// >= 10x the TSV parse at equal depth.  Arg: {layers}.
#include <benchmark/benchmark.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "infer/sparse_dnn.hpp"
#include "radixnet/graph_challenge.hpp"
#include "sparse/io.hpp"
#include "store/artifact.hpp"
#include "support/random.hpp"

namespace radix {
namespace {

constexpr index_t kNeurons = 1024;
constexpr index_t kRows = 4;

struct StoreFiles {
  std::string artifact;       // full-CSR RADIXART
  std::string spec_artifact;  // spec-only RADIXART
  std::string tsv_prefix;     // TSV layer stack
  std::uint64_t artifact_bytes = 0;
  std::uint64_t spec_bytes = 0;
};

// One on-disk copy of each format per depth, written once per process
// into a scratch dir under the bench's working directory.
const StoreFiles& files_for(std::size_t layers) {
  static std::map<std::size_t, StoreFiles> cache;
  auto it = cache.find(layers);
  if (it != cache.end()) return it->second;

  static const std::string dir = [] {
    std::string d = "radixnet_bench_store_" + std::to_string(getpid());
    std::system(("rm -rf " + d + " && mkdir -p " + d).c_str());
    std::atexit([] {
      std::system(("rm -rf radixnet_bench_store_" +
                   std::to_string(getpid()))
                      .c_str());
    });
    return d;
  }();

  // Plain (unshuffled) network so the spec-only variant regenerates the
  // exact same model the full-CSR artifact carries.
  const gc::Network net = gc::network(kNeurons, layers, nullptr);
  const infer::SparseDnn dnn(net.layers, net.bias, gc::kClamp);

  StoreFiles f;
  const std::string stem = dir + "/model_" + std::to_string(layers);
  f.artifact = stem + ".radixart";
  store::save_artifact(f.artifact, dnn, "bench");
  f.artifact_bytes = store::ArtifactReader(f.artifact).file_size();

  f.spec_artifact = stem + "_spec.radixart";
  const std::vector<float> weights(layers, gc::kWeight);
  store::save_spec_artifact(f.spec_artifact, gc::spec(kNeurons, layers),
                            weights, dnn.biases(), gc::kClamp, "bench");
  f.spec_bytes = store::ArtifactReader(f.spec_artifact).file_size();

  f.tsv_prefix = stem + "_tsv";
  write_layer_stack(f.tsv_prefix, gc::topology(kNeurons, layers).layers());

  return cache.emplace(layers, std::move(f)).first->second;
}

infer::SparseDnn load_tsv(const StoreFiles& f) {
  std::vector<Csr<float>> layers;
  for (const auto& l : read_layer_stack(f.tsv_prefix)) {
    layers.push_back(
        l.map<float>([](pattern_t) { return gc::kWeight; }));
  }
  return infer::SparseDnn(std::move(layers), gc::bias_for_width(kNeurons),
                          gc::kClamp);
}

void BM_StoreLoadMmap(benchmark::State& state) {
  const StoreFiles& f = files_for(static_cast<std::size_t>(state.range(0)));
  std::uint64_t nnz = 0;
  for (auto _ : state) {
    store::ArtifactReader reader(f.artifact);
    infer::SparseDnn dnn = reader.instantiate();
    nnz = dnn.total_nnz();
    benchmark::DoNotOptimize(nnz);
  }
  state.counters["artifact_bytes"] =
      static_cast<double>(f.artifact_bytes);
  state.counters["nnz"] = static_cast<double>(nnz);
}
BENCHMARK(BM_StoreLoadMmap)->Arg(12)->Arg(24)->Unit(benchmark::kMicrosecond);

void BM_StoreLoadTsv(benchmark::State& state) {
  const StoreFiles& f = files_for(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    infer::SparseDnn dnn = load_tsv(f);
    benchmark::DoNotOptimize(dnn.total_nnz());
  }
}
BENCHMARK(BM_StoreLoadTsv)->Arg(12)->Arg(24)->Unit(benchmark::kMicrosecond);

void BM_StoreLoadSpec(benchmark::State& state) {
  const StoreFiles& f = files_for(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    store::ArtifactReader reader(f.spec_artifact);
    infer::SparseDnn dnn = reader.instantiate();
    benchmark::DoNotOptimize(dnn.total_nnz());
  }
  state.counters["artifact_bytes"] = static_cast<double>(f.spec_bytes);
}
BENCHMARK(BM_StoreLoadSpec)->Arg(12)->Arg(24)->Unit(benchmark::kMicrosecond);

void BM_StoreColdStart(benchmark::State& state) {
  // Daemon-restart latency: mmap load + the first forward pass (which
  // pays the lazy transpose builds the load path deliberately skips).
  const StoreFiles& f = files_for(static_cast<std::size_t>(state.range(0)));
  Rng rng(5);
  const std::vector<float> input =
      gc::synthetic_input(kRows, kNeurons, 0.4, rng);
  for (auto _ : state) {
    store::ArtifactReader reader(f.artifact);
    infer::SparseDnn dnn = reader.instantiate();
    const std::vector<float> y = dnn.forward(input, kRows);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_StoreColdStart)->Arg(12)->Arg(24)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace radix

// ShardRouter tests: routing one model across N independent engines
// must change WHERE work runs, never what it computes -- outputs stay
// bit-identical to a direct fused forward of the same rows -- while the
// Backend surface (merged stats, summed pending, drain-on-shutdown,
// name lookup) behaves like one big engine.  Sized to stay meaningful
// under ThreadSanitizer (the suite carries the `serve` CTest label).
#include "serve/router.hpp"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <span>
#include <stdexcept>
#include <thread>
#include <vector>

#include "radixnet/graph_challenge.hpp"
#include "serve/client.hpp"
#include "support/random.hpp"
#include "support/thread.hpp"

namespace radix::serve {
namespace {

using namespace std::chrono_literals;

std::shared_ptr<infer::SparseDnn> make_dnn(index_t neurons,
                                           std::size_t layers,
                                           std::uint64_t seed) {
  Rng rng(seed);
  const auto net = gc::network(neurons, layers, &rng);
  return std::make_shared<infer::SparseDnn>(net.layers, net.bias, gc::kClamp);
}

std::vector<float> direct_forward(const infer::SparseDnn& dnn,
                                  const std::vector<float>& input,
                                  index_t rows) {
  infer::InferenceWorkspace ws;
  const auto y = dnn.forward(input.data(), rows, ws);
  return {y.begin(), y.end()};
}

TEST(ShardRouter, BitExactAcrossShardsAndAggregatedStats) {
  const auto dnn = make_dnn(1024, 4, 60);
  ShardRouter router({.shards = 3,
                      .engine = {.workers = 1,
                                 .max_batch_rows = 8,
                                 .max_delay = 200us,
                                 .queue_capacity = 64}});
  EXPECT_EQ(router.num_shards(), 3u);
  const auto id = router.add_model(dnn, "gc");

  constexpr index_t kRequests = 60;
  Rng irng(61);
  std::vector<std::vector<float>> inputs;
  std::vector<std::vector<float>> want;
  std::uint64_t total_rows = 0;
  for (index_t i = 0; i < kRequests; ++i) {
    const index_t rows = 1 + i % 3;
    total_rows += rows;
    inputs.push_back(gc::synthetic_input(rows, 1024, 0.4, irng));
    want.push_back(direct_forward(*dnn, inputs.back(), rows));
  }

  std::vector<std::future<std::vector<float>>> futures;
  for (index_t i = 0; i < kRequests; ++i) {
    futures.push_back(
        router.submit(InferenceRequest::borrowed(id, inputs[i], 1 + i % 3))
            .take_future());
  }
  for (index_t i = 0; i < kRequests; ++i) {
    EXPECT_EQ(futures[i].get(), want[i])
        << "request " << i << " must be bit-exact regardless of its shard";
  }

  // The merged view must account for every request exactly once, and
  // its batch histogram must cover every batch any shard ran.
  const ServeStats merged = router.stats(id);
  EXPECT_EQ(merged.requests, kRequests);
  EXPECT_EQ(merged.rows, total_rows);
  EXPECT_EQ(merged.errors, 0u);
  EXPECT_GT(merged.edges_per_busy_second, 0.0);
  std::uint64_t shard_requests = 0, shard_batches = 0;
  for (std::size_t s = 0; s < router.num_shards(); ++s) {
    shard_requests += router.shard(s).stats(id).requests;
    shard_batches += router.shard(s).stats(id).batches;
  }
  EXPECT_EQ(shard_requests, kRequests);
  EXPECT_EQ(merged.batches, shard_batches);
  std::uint64_t hist_total = 0;
  for (const auto& [bound, count] : merged.batch_rows_histogram) {
    hist_total += count;
  }
  EXPECT_EQ(hist_total, merged.batches);
  EXPECT_EQ(router.pending(id), 0u);
}

TEST(ShardRouter, SingleShardDegeneratesToOneEngine) {
  const auto dnn = make_dnn(1024, 2, 62);
  ShardRouter router({.shards = 1, .engine = {.workers = 1}});
  const auto id = router.add_model(dnn, "solo");
  Rng irng(63);
  const auto x = gc::synthetic_input(2, 1024, 0.4, irng);
  EXPECT_EQ(router.submit(InferenceRequest::borrowed(id, x, 2)).get(),
            direct_forward(*dnn, x, 2));
  EXPECT_EQ(router.stats(id).requests, 1u);
  EXPECT_EQ(router.shard(0).stats(id).requests, 1u);
}

TEST(ShardRouter, FindModelNamesAndDuplicateRejection) {
  const auto d0 = make_dnn(1024, 2, 64);
  const auto d1 = make_dnn(1024, 2, 65);
  ShardRouter router({.shards = 2, .engine = {.workers = 1}});
  const auto a = router.add_model(d0, "alpha");
  const auto anon = router.add_model(d1);  // generated name

  EXPECT_EQ(router.num_models(), 2u);
  EXPECT_EQ(router.find_model("alpha").value(), a);
  EXPECT_EQ(router.find_model("model-1").value(), anon);
  EXPECT_FALSE(router.find_model("beta").has_value());
  // Router and shard registries agree on names.
  for (std::size_t s = 0; s < router.num_shards(); ++s) {
    EXPECT_EQ(router.shard(s).find_model("alpha").value(), a);
    EXPECT_EQ(router.shard(s).model_name(anon), "model-1");
  }
  EXPECT_THROW((void)router.add_model(d1, "alpha"), Error);
  EXPECT_EQ(router.num_models(), 2u);
}

TEST(ShardRouter, ClientWorksOverRouterBackend) {
  const auto dnn = make_dnn(1024, 2, 66);
  ShardRouter router({.shards = 2, .engine = {.workers = 1}});
  (void)router.add_model(dnn, "svc");
  Client client(router, router.find_model("svc").value());
  Rng irng(67);
  const auto x = gc::synthetic_input(1, 1024, 0.4, irng);
  const auto want = direct_forward(*dnn, x, 1);
  for (int i = 0; i < 6; ++i) EXPECT_EQ(client.submit(x, 1).get(), want);
  EXPECT_EQ(client.stats().requests, 6u);
}

TEST(ShardRouter, ConcurrentClientsSpreadAndStayBitExact) {
  const auto dnn = make_dnn(1024, 4, 68);
  ShardRouter router({.shards = 2,
                      .engine = {.workers = 1,
                                 .max_batch_rows = 16,
                                 .max_delay = 200us,
                                 .queue_capacity = 64}});
  const auto id = router.add_model(dnn, "hot");

  constexpr index_t kPayloads = 4;
  struct Payload {
    std::vector<float> x;
    index_t rows;
    std::vector<float> want;
  };
  std::vector<Payload> payloads;
  Rng irng(69);
  for (index_t p = 0; p < kPayloads; ++p) {
    Payload pl;
    pl.rows = 1 + p % 2;
    pl.x = gc::synthetic_input(pl.rows, 1024, 0.4, irng);
    pl.want = direct_forward(*dnn, pl.x, pl.rows);
    payloads.push_back(std::move(pl));
  }

  constexpr int kClients = 6;
  constexpr int kRequestsPerClient = 25;
  std::atomic<int> mismatches{0};
  {
    ThreadGroup clients;
    for (int c = 0; c < kClients; ++c) {
      clients.spawn([&, c] {
        for (int i = 0; i < kRequestsPerClient; ++i) {
          const Payload& pl =
              payloads[static_cast<std::size_t>((c + i) % kPayloads)];
          auto res =
              router.submit(InferenceRequest::borrowed(id, pl.x, pl.rows));
          if (!res.admitted() || res.get() != pl.want) ++mismatches;
        }
      });
    }
  }  // join
  EXPECT_EQ(mismatches.load(), 0);
  const ServeStats merged = router.stats(id);
  EXPECT_EQ(merged.requests,
            static_cast<std::uint64_t>(kClients * kRequestsPerClient));
  EXPECT_EQ(merged.errors, 0u);
  // Two-choice routing under saturating load must actually use more
  // than one shard (a stuck router would funnel everything to one).
  int shards_used = 0;
  for (std::size_t s = 0; s < router.num_shards(); ++s) {
    if (router.shard(s).stats(id).requests > 0) ++shards_used;
  }
  EXPECT_GT(shards_used, 1) << "power-of-two-choices never spread the load";
}

TEST(ShardRouter, ShutdownDrainsEveryShardAndRejectsAfter) {
  const auto dnn = make_dnn(1024, 2, 70);
  std::vector<std::future<std::vector<float>>> futures;
  std::vector<float> x;
  std::vector<float> want;
  {
    ShardRouter router({.shards = 3,
                        .engine = {.workers = 1, .max_delay = 10ms}});
    const auto id = router.add_model(dnn, "drain");
    Rng irng(71);
    x = gc::synthetic_input(1, 1024, 0.4, irng);
    want = direct_forward(*dnn, x, 1);
    for (int i = 0; i < 30; ++i) {
      futures.push_back(
          router.submit(InferenceRequest::borrowed(id, x, 1)).take_future());
    }
    router.shutdown();  // every shard drains before this returns
    EXPECT_FALSE(router.accepting());
    EXPECT_FALSE(router.submit(InferenceRequest::borrowed(id, x, 1)).admitted());
    EXPECT_EQ(router.stats(id).requests, 30u);
  }  // destructor: second shutdown must be a no-op
  for (auto& f : futures) {
    EXPECT_EQ(f.get(), want);  // no broken promises across shards
  }
}

TEST(ShardRouter, FailFastAdmissionIsPerChosenShard) {
  const auto dnn = make_dnn(1024, 2, 72);
  // One shard, one worker, tiny queue: deterministic full-queue probe
  // through the router's admission path.
  ShardRouter router({.shards = 1,
                      .engine = {.workers = 1,
                                 .max_delay = 0us,
                                 .queue_capacity = 1}});
  const auto id = router.add_model(dnn, "tight");
  Rng irng(73);
  const auto x = gc::synthetic_input(1, 1024, 0.4, irng);

  std::promise<void> parked;
  std::promise<void> release;
  auto release_future = release.get_future();
  (void)router.submit(InferenceRequest::borrowed(id, x, 1),
                      {.done = [&](std::span<const float>,
                                   const RequestTiming&, std::exception_ptr) {
                        parked.set_value();
                        release_future.wait();
                      }});
  parked.get_future().wait();
  auto f1 = router.submit(InferenceRequest::borrowed(id, x, 1)).take_future();
  EXPECT_EQ(router.pending(id), 1u);
  EXPECT_FALSE(router
                   .submit(InferenceRequest::borrowed(id, x, 1),
                           {.admission = Admission::kFailFast})
                   .admitted())
      << "full shard queue must reject fail-fast admission";
  release.set_value();
  EXPECT_EQ(f1.get(), direct_forward(*dnn, x, 1));
}

TEST(ShardRouter, BoundedDrawIsInRangeAndUnbiased) {
  // Local splitmix64: deterministic, decorrelated inputs for the draw.
  const auto mix = [](std::uint64_t z) {
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  };
  // Edges: the widening multiply maps the extremes of the input range
  // onto the extremes of [0, n).
  EXPECT_EQ(detail::bounded_draw(0, 6), 0u);
  EXPECT_EQ(detail::bounded_draw(~std::uint64_t{0}, 6), 5u);
  EXPECT_EQ(detail::bounded_draw(mix(1), 1), 0u);

  // Chi-square goodness of fit for n = 6 (not a power of two, so the
  // old `r % n` would have been biased).  Inputs are a fixed splitmix64
  // stream, so the statistic is a constant -- this cannot flake.  The
  // bound is the 99.9th percentile of chi^2 with 5 degrees of freedom.
  constexpr std::uint64_t kN = 6;
  constexpr int kDraws = 120000;
  std::array<std::uint64_t, kN> counts{};
  for (int i = 1; i <= kDraws; ++i) {
    const std::uint64_t d =
        detail::bounded_draw(mix(0x9e3779b97f4a7c15ull * i), kN);
    ASSERT_LT(d, kN);
    ++counts[d];
  }
  const double expected = static_cast<double>(kDraws) / kN;
  double chi2 = 0.0;
  for (const std::uint64_t c : counts) {
    const double diff = static_cast<double>(c) - expected;
    chi2 += diff * diff / expected;
  }
  EXPECT_LT(chi2, 20.52) << "bounded_draw distribution is skewed";
}

TEST(ShardRouter, AcceptingReflectsTheWholeFleet) {
  const auto dnn = make_dnn(1024, 2, 74);
  ShardRouter router({.shards = 2, .engine = {.workers = 1}});
  const auto id = router.add_model(dnn, "fleet");
  Rng irng(75);
  const auto x = gc::synthetic_input(1, 1024, 0.4, irng);
  const auto want = direct_forward(*dnn, x, 1);

  EXPECT_TRUE(router.accepting());
  // Losing shard 0 must NOT report the fleet closed (the old
  // front()-only view did exactly that), and traffic keeps flowing.
  router.kill_shard(0);
  EXPECT_EQ(router.shard_health(0), ShardHealth::kDown);
  EXPECT_TRUE(router.accepting());
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(router.submit(InferenceRequest::borrowed(id, x, 1)).get(), want);
  }
  router.kill_shard(1);
  EXPECT_FALSE(router.accepting()) << "no shard left in rotation";
  EXPECT_FALSE(router.submit(InferenceRequest::borrowed(id, x, 1)).admitted());
  router.restart_shard(0);
  EXPECT_TRUE(router.accepting());
  EXPECT_EQ(router.submit(InferenceRequest::borrowed(id, x, 1)).get(), want);
}

TEST(ShardRouter, KillShardFailsOverQueuedRequestsExactlyOnce) {
  const auto dnn = make_dnn(1024, 2, 76);
  // One worker per shard, one row per batch, no coalescing delay: a
  // parked worker deterministically strands everything queued behind it.
  ShardRouter router({.shards = 2,
                      .engine = {.workers = 1,
                                 .max_batch_rows = 1,
                                 .max_delay = 0us,
                                 .queue_capacity = 64}});
  const auto id = router.add_model(dnn, "ha");
  Rng irng(77);
  const auto x = gc::synthetic_input(1, 1024, 0.4, irng);
  const auto want = direct_forward(*dnn, x, 1);

  // Park BOTH shards' workers inside completion callbacks, so queued
  // requests stay queued until we say otherwise.  A parker that lands
  // behind an already-parked worker just queues; keep submitting until
  // two of them actually hold a worker each.
  std::atomic<int> parked{0};
  std::promise<void> release;
  std::shared_future<void> release_future = release.get_future().share();
  int parkers = 0;
  while (parked.load() < 2 && parkers < 64) {
    (void)router.submit(InferenceRequest::borrowed(id, x, 1),
                        {.done = [&](std::span<const float>,
                                     const RequestTiming&,
                                     std::exception_ptr) {
                          ++parked;
                          release_future.wait();
                        }});
    ++parkers;
    std::this_thread::sleep_for(1ms);
  }
  ASSERT_EQ(parked.load(), 2) << "could not park both shard workers";

  // Queue real traffic; it spreads across both shards (two-choice on
  // pending depth guarantees the less-loaded shard is picked on ties'
  // follow-ups), so shard 0 ends up with queued-but-unclaimed work.
  std::vector<std::future<std::vector<float>>> futures;
  for (int i = 0; i < 10; ++i) {
    futures.push_back(
        router.submit(InferenceRequest::borrowed(id, x, 1)).take_future());
  }
  const std::size_t orphans = router.shard(0).pending(id);
  ASSERT_GT(orphans, 0u) << "two-choice routing left shard 0 empty";

  // kill_shard completes the orphans' failover BEFORE joining the dead
  // shard's (still parked) worker, so it must be driven from a side
  // thread; the assertions below run while it is still joining.
  std::thread killer([&] { router.kill_shard(0); });
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (router.failovers() < orphans &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_EQ(router.failovers(), orphans)
      << "every orphaned request must be resubmitted exactly once";
  EXPECT_EQ(router.shard_health(0), ShardHealth::kDown);
  EXPECT_TRUE(router.accepting());

  release.set_value();  // claimed batches finish; shard 1 drains it all
  killer.join();
  for (auto& f : futures) {
    EXPECT_EQ(f.get(), want) << "a failed-over request was lost or wrong";
  }
  // The dead shard's ledger shows its orphans as errors; the router's
  // merged view therefore must too -- failover changes where a request
  // is SERVED, not what shard 0 did with it.
  EXPECT_GE(router.stats(id).errors, orphans);
}

TEST(ShardRouter, AddModelRollbackKeepsShardIdSpacesInLockstep) {
  const auto d0 = make_dnn(1024, 2, 78);
  const auto d1 = make_dnn(1024, 2, 79);
  ShardRouterOptions opts{.shards = 2, .engine = {.workers = 1}};
  opts.registration_hook = [](std::size_t shard, ModelId id) {
    // Shard 0 registers id 1, then shard 1 explodes: the partial-
    // registration case the rollback exists for.
    if (id == 1 && shard == 1) throw std::runtime_error("injected");
  };
  ShardRouter router(opts);
  const auto a = router.add_model(d0, "a");
  EXPECT_THROW((void)router.add_model(d1, "b"), std::runtime_error);

  // The failed registration must leave no trace but a burned id: the
  // router still serves "a", rejects the burned id as a value, and the
  // NEXT registration gets the same id on every shard.
  EXPECT_EQ(router.num_models(), 1u);
  EXPECT_FALSE(router.find_model("b").has_value());
  for (std::size_t s = 0; s < router.num_shards(); ++s) {
    EXPECT_TRUE(router.shard(s).model_retired(1))
        << "shard " << s << " did not burn the rolled-back id";
  }
  Rng irng(100);
  const auto x = gc::synthetic_input(1, 1024, 0.4, irng);
  EXPECT_FALSE(router.submit(InferenceRequest::borrowed(1, x, 1)).admitted());

  const auto c = router.add_model(d1, "c");
  EXPECT_EQ(c, 2u) << "ids desynced across the rollback";
  for (std::size_t s = 0; s < router.num_shards(); ++s) {
    EXPECT_EQ(router.shard(s).find_model("c").value(), c);
  }
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(router.submit(InferenceRequest::borrowed(c, x, 1)).get(),
              direct_forward(*d1, x, 1));
  }
  EXPECT_EQ(router.submit(InferenceRequest::borrowed(a, x, 1)).get(),
            direct_forward(*d0, x, 1));
  // The name of the failed registration was never committed: reusable.
  EXPECT_EQ(router.add_model(make_dnn(1024, 2, 101), "b"), 3u);
}

TEST(ShardRouter, DrainShardRoutesAroundUntilRestart) {
  const auto dnn = make_dnn(1024, 2, 102);
  ShardRouter router({.shards = 2, .engine = {.workers = 1}});
  const auto id = router.add_model(dnn, "maint");
  Rng irng(103);
  const auto x = gc::synthetic_input(1, 1024, 0.4, irng);
  const auto want = direct_forward(*dnn, x, 1);

  router.drain_shard(0);
  EXPECT_EQ(router.shard_health(0), ShardHealth::kDraining);
  EXPECT_TRUE(router.accepting());
  const auto before = router.shard(0).stats(id).requests;
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(router.submit(InferenceRequest::borrowed(id, x, 1)).get(), want);
  }
  EXPECT_EQ(router.shard(0).stats(id).requests, before)
      << "a draining shard must receive no new routed traffic";

  router.restart_shard(0);
  EXPECT_EQ(router.shard_health(0), ShardHealth::kUp);
  for (int i = 0; i < 40; ++i) {
    EXPECT_EQ(router.submit(InferenceRequest::borrowed(id, x, 1)).get(), want);
  }
  EXPECT_GT(router.shard(0).stats(id).requests, before)
      << "a restarted shard must re-enter rotation";
  EXPECT_EQ(router.stats(id).requests, 60u);
}

TEST(ShardRouter, RestartReplaysRegistryAndCarriesStats) {
  const auto d_a = make_dnn(1024, 2, 104);
  const auto d_b1 = make_dnn(1024, 2, 105);
  const auto d_b2 = make_dnn(1024, 2, 106);
  ShardRouter router({.shards = 2, .engine = {.workers = 1}});
  const auto a = router.add_model(d_a, "a");
  const auto b = router.add_model(d_b1, "b");
  router.remove_model(a);
  router.swap_model(b, d_b2);
  Rng irng(107);
  const auto x = gc::synthetic_input(1, 1024, 0.4, irng);
  const auto want = direct_forward(*d_b2, x, 1);
  for (int i = 0; i < 12; ++i) {
    EXPECT_EQ(router.submit(InferenceRequest::borrowed(b, x, 1)).get(), want);
  }
  const auto before = router.stats(b).requests;
  EXPECT_EQ(before, 12u);

  router.kill_shard(0);
  router.restart_shard(0);
  EXPECT_EQ(router.shard_health(0), ShardHealth::kUp);

  // The rebuilt shard must be indistinguishable from its siblings:
  // same ids, same names, same tombstones, same swap version.
  const Engine& rebuilt = router.shard(0);
  EXPECT_EQ(rebuilt.num_models(), 1u);
  EXPECT_TRUE(rebuilt.model_retired(a));
  EXPECT_EQ(rebuilt.find_model("b").value(), b);
  EXPECT_EQ(rebuilt.model_version(b), 2u);
  EXPECT_EQ(rebuilt.model_version(b), router.shard(1).model_version(b));

  // Restarts must not lose history: the merged view still carries every
  // pre-kill request, and new traffic lands on top -- served by v2.
  EXPECT_EQ(router.stats(b).requests, before);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(router.submit(InferenceRequest::borrowed(b, x, 1)).get(), want);
  }
  EXPECT_EQ(router.stats(b).requests, before + 10);
  EXPECT_FALSE(router.submit(InferenceRequest::borrowed(a, x, 1)).admitted())
      << "a removed model must stay removed across restarts";
}

}  // namespace
}  // namespace radix::serve

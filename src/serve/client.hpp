// Client: a (backend, model) handle for call sites that talk to one
// model.
//
// The Backend interface addresses models by id on every call; a Client
// binds the pair once so request loops read naturally:
//
//   serve::Client chat(backend, backend.find_model("chat").value());
//   auto fut = chat.submit(rows_span, n).take_future();
//   chat.submit(std::move(buffer), n, {.admission = Admission::kFailFast});
//   chat.stats().e2e_p99;
//
// The two submit wrappers mirror the InferenceRequest factories -- a
// span is borrowed (caller keeps it alive until completion), a vector
// is owned -- and both funnel into the backend's single
// submit(InferenceRequest, SubmitOptions) entry point; the Client adds
// no API surface of its own beyond the binding.
#pragma once

#include <span>
#include <utility>
#include <vector>

#include "serve/backend.hpp"

namespace radix::serve {

class Client {
 public:
  Client() = default;
  Client(Backend& backend, ModelId model)
      : backend_(&backend), model_(model) {}

  /// Borrowed-input submit: `input` must stay alive until completion.
  SubmitResult submit(std::span<const float> input, index_t rows,
                      SubmitOptions opts = {}) const {
    return checked().submit(InferenceRequest::borrowed(model_, input, rows),
                            std::move(opts));
  }

  /// Owned-input submit: the request carries the buffer.  Rvalue-only
  /// so a vector LVALUE resolves to the borrowed span overload above
  /// instead of silently deep-copying here; pass std::move(v) (or a
  /// temporary) to hand the buffer over.
  SubmitResult submit(std::vector<float>&& input, index_t rows,
                      SubmitOptions opts = {}) const {
    return checked().submit(
        InferenceRequest::owned(model_, std::move(input), rows),
        std::move(opts));
  }

  ServeStats stats() const { return checked().stats(model_); }
  std::size_t pending() const { return checked().pending(model_); }

  Backend& backend() const { return checked(); }
  ModelId model() const noexcept { return model_; }
  bool bound() const noexcept { return backend_ != nullptr; }

 private:
  // Default-constructed Clients are legal placeholders; using one is a
  // caller bug -- surface it as the library's standard error instead of
  // a null dereference.
  Backend& checked() const {
    RADIX_REQUIRE(backend_ != nullptr, "Client: not bound to a backend");
    return *backend_;
  }

  Backend* backend_ = nullptr;
  ModelId model_ = 0;
};

}  // namespace radix::serve
